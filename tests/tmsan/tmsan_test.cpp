// tmsan negative tests: plant each bug class the sanitizer claims to
// catch, prove the disabled stub misses it, then arm the checker and
// prove it is caught. Plus clean-workload tests showing the armed
// checkers stay silent on correct code (the false-positive budget is
// zero by design).
#include "tmsan/tmsan.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>

#include "common/runtime_config.hpp"
#include "defer/atomic_defer.hpp"
#include "stm/api.hpp"
#include "stm/tvar.hpp"

namespace adtm {
namespace {

// A deferrable object with a transactional field (the defer_test Cell
// idiom): subscribe-guarded transactional accessors plus raw accessors
// for use inside deferred epilogues.
class Cell : public Deferrable {
 public:
  int get(stm::Tx& tx) const {
    subscribe(tx);
    return value_.get(tx);
  }
  void set(stm::Tx& tx, int v) {
    subscribe(tx);
    value_.set(tx, v);
  }
  int raw() const { return value_.load_direct(); }
  void raw_set(int v) { value_.store_direct(v); }

 private:
  stm::tvar<int> value_{0};
};

// Every test starts from a disarmed, empty sanitizer and leaves it that
// way, so the suite composes in any order (including under the tmsan
// preset, where ADTM_TMSAN=1 makes stm::init arm the checkers).
class TmsanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stm::Config cfg;
    cfg.backend = "tl2";
    stm::init(cfg);
    tmsan::disable(tmsan::kCheckAll);
    tmsan::reset();
  }
  void TearDown() override {
    tmsan::disable(tmsan::kCheckAll);
    tmsan::reset();
  }
};

// The planted mixed-mode race: a transaction writes a word, and while it
// is still running another thread stores to the same word directly. The
// flag dance makes the overlap deterministic.
void run_mixed_mode_race() {
  stm::tvar<int> x{0};
  std::atomic<bool> tx_wrote{false};
  std::atomic<bool> raw_done{false};
  std::thread racer([&] {
    while (!tx_wrote.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    x.store_direct(99);  // the bug: unprivatized direct store
    raw_done.store(true, std::memory_order_release);
  });
  stm::atomic([&](stm::Tx& tx) {
    x.set(tx, 1);
    tx_wrote.store(true, std::memory_order_release);
    while (!raw_done.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    // Touch the word again so the transactional side also observes the
    // raw store (both report directions get exercised).
    x.set(tx, 2);
  });
  racer.join();
}

TEST_F(TmsanTest, DisabledStubMissesMixedModeRace) {
  run_mixed_mode_race();
  EXPECT_EQ(tmsan::violation_count(), 0u);
}

TEST_F(TmsanTest, DetectsMixedModeRace) {
  tmsan::enable(tmsan::kCheckRace);
  run_mixed_mode_race();
  EXPECT_GE(tmsan::violation_count(tmsan::ViolationKind::MixedModeRace), 1u);
  // The report carries both sides of at least one race.
  bool saw_both_tids = false;
  for (const tmsan::Violation& v : tmsan::violations()) {
    if (v.kind == tmsan::ViolationKind::MixedModeRace &&
        v.tid_a != v.tid_b) {
      saw_both_tids = true;
    }
  }
  EXPECT_TRUE(saw_both_tids) << tmsan::report();
}

TEST_F(TmsanTest, PrivatizedAccessIsClean) {
  tmsan::enable(tmsan::kCheckRace);
  stm::tvar<int> x{0};
  // Privatization done right: the transaction commits (quiescing) before
  // the direct access, so no transaction is live at the raw store.
  stm::atomic([&](stm::Tx& tx) { x.set(tx, 1); });
  x.store_direct(2);
  stm::atomic([&](stm::Tx& tx) { x.set(tx, x.get(tx) + 1); });
  EXPECT_EQ(tmsan::violation_count(), 0u) << tmsan::report();
}

// --- deferral contract -----------------------------------------------------

// The planted coverage bug: the epilogue touches `covered` (declared
// protected by its own TxLock) but its atomic_defer listed only `listed`.
void run_uncovered_epilogue(Cell& covered, Cell& listed) {
  stm::atomic([&](stm::Tx& tx) {
    listed.set(tx, 1);
    atomic_defer(tx, [&] { covered.raw_set(7); }, listed);
  });
}

TEST_F(TmsanTest, DisabledStubMissesUncoveredEpilogue) {
  Cell covered, listed;
  tmsan::cover(&covered, sizeof covered, &covered.txlock());
  run_uncovered_epilogue(covered, listed);
  EXPECT_EQ(tmsan::violation_count(), 0u);
}

TEST_F(TmsanTest, DetectsUncoveredEpilogueAccess) {
  tmsan::enable(tmsan::kCheckDeferral);
  Cell covered, listed;
  tmsan::cover(&covered, sizeof covered, &covered.txlock());
  run_uncovered_epilogue(covered, listed);
  EXPECT_GE(tmsan::violation_count(tmsan::ViolationKind::DeferralUncovered),
            1u);
}

TEST_F(TmsanTest, CoveredEpilogueAccessIsClean) {
  tmsan::enable(tmsan::kCheckDeferral);
  Cell a, b;
  tmsan::cover(&a, sizeof a, &a.txlock());
  tmsan::cover(&b, sizeof b, &b.txlock());
  stm::atomic([&](stm::Tx& tx) {
    a.set(tx, 1);
    atomic_defer(tx, [&] {
      a.raw_set(2);
      b.raw_set(3);
    }, a, b);
  });
  EXPECT_EQ(tmsan::violation_count(), 0u) << tmsan::report();
}

// The planted early-release bug: the transaction registers an epilogue
// under `cell`'s lock, then frees that lock before committing. The
// epilogue later runs unprotected, and its own release of the no-longer-
// held lock throws.
void run_early_release(Cell& cell) {
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 atomic_defer(tx, [] {}, cell);
                 cell.txlock().release(tx);  // the bug
               }),
               std::logic_error);
}

TEST_F(TmsanTest, DisabledStubMissesEarlyLockRelease) {
  Cell cell;
  run_early_release(cell);
  EXPECT_EQ(tmsan::violation_count(), 0u);
}

TEST_F(TmsanTest, DetectsEarlyLockRelease) {
  tmsan::enable(tmsan::kCheckDeferral);
  Cell cell;
  run_early_release(cell);
  EXPECT_GE(tmsan::violation_count(tmsan::ViolationKind::EarlyLockRelease),
            1u);
}

TEST_F(TmsanTest, AbortedDeferWithdrawsPend) {
  tmsan::enable(tmsan::kCheckDeferral);
  Cell cell;
  // An attempt registers a defer, then rolls back (user abort): the pend
  // must be withdrawn, so a later legitimate free transition is clean.
  try {
    stm::atomic([&](stm::Tx& tx) {
      atomic_defer(tx, [] {}, cell);
      throw std::runtime_error("user abort");
    });
  } catch (const std::runtime_error&) {
  }
  cell.txlock().acquire();
  cell.txlock().release();
  EXPECT_EQ(tmsan::violation_count(), 0u) << tmsan::report();
}

// --- opacity (hand-driven through the public hooks) ------------------------

TEST_F(TmsanTest, OpacityFlagsInconsistentCommittedSnapshot) {
  tmsan::enable(tmsan::kCheckOpacity);
  std::uint64_t a = 0, b = 0;
  // Writer 1 commits (a,b) = (1,1); writer 2 commits (2,2).
  tmsan::on_tx_begin(false);
  tmsan::on_tx_write(&a, 1);
  tmsan::on_tx_write(&b, 1);
  tmsan::on_tx_commit(10);
  tmsan::on_tx_begin(false);
  tmsan::on_tx_write(&a, 2);
  tmsan::on_tx_write(&b, 2);
  tmsan::on_tx_commit(20);
  // A reader that saw a from before writer 2 and b from after it read a
  // snapshot no single point in commit order can explain.
  tmsan::on_tx_begin(false);
  tmsan::on_tx_read(&a, 1);
  tmsan::on_tx_read(&b, 2);
  tmsan::on_tx_commit(30);
  EXPECT_EQ(tmsan::violation_count(tmsan::ViolationKind::OpacityViolation),
            1u)
      << tmsan::report();
}

TEST_F(TmsanTest, OpacityChecksAbortedTransactionsToo) {
  tmsan::enable(tmsan::kCheckOpacity);
  std::uint64_t a = 0, b = 0;
  tmsan::on_tx_begin(false);
  tmsan::on_tx_write(&a, 1);
  tmsan::on_tx_write(&b, 1);
  tmsan::on_tx_commit(10);
  tmsan::on_tx_begin(false);
  tmsan::on_tx_write(&a, 2);
  tmsan::on_tx_write(&b, 2);
  tmsan::on_tx_commit(20);
  // Same inconsistent snapshot, but the reader aborts: opacity demands
  // aborted transactions observed a consistent prefix as well.
  tmsan::on_tx_begin(false);
  tmsan::on_tx_read(&a, 1);
  tmsan::on_tx_read(&b, 2);
  tmsan::on_tx_abort();
  EXPECT_EQ(tmsan::violation_count(tmsan::ViolationKind::OpacityViolation),
            1u)
      << tmsan::report();
}

TEST_F(TmsanTest, OpacityAcceptsConsistentSnapshots) {
  tmsan::enable(tmsan::kCheckOpacity);
  std::uint64_t a = 0, b = 0;
  tmsan::on_tx_begin(false);
  tmsan::on_tx_write(&a, 1);
  tmsan::on_tx_write(&b, 1);
  tmsan::on_tx_commit(10);
  tmsan::on_tx_begin(false);
  tmsan::on_tx_write(&a, 2);
  tmsan::on_tx_write(&b, 2);
  tmsan::on_tx_commit(20);
  // Both serialization points are fine: (1,1) before writer 2, (2,2)
  // after it, and the pre-history baseline (0,0) before writer 1.
  tmsan::on_tx_begin(false);
  tmsan::on_tx_read(&a, 1);
  tmsan::on_tx_read(&b, 1);
  tmsan::on_tx_commit(30);
  tmsan::on_tx_begin(false);
  tmsan::on_tx_read(&a, 2);
  tmsan::on_tx_read(&b, 2);
  tmsan::on_tx_abort();
  EXPECT_EQ(tmsan::violation_count(), 0u) << tmsan::report();
}

TEST_F(TmsanTest, OpacityCountsUnverifiableReadsInsteadOfGuessing) {
  tmsan::enable(tmsan::kCheckOpacity);
  std::uint64_t a = 0;
  // First observation claims the pre-history baseline (0).
  tmsan::on_tx_begin(false);
  tmsan::on_tx_read(&a, 0);
  tmsan::on_tx_commit(5);
  tmsan::on_tx_begin(false);
  tmsan::on_tx_write(&a, 1);
  tmsan::on_tx_commit(10);
  // A value that matches neither the baseline nor any committed version
  // (a direct-mode store the checker cannot see): counted, never
  // reported as a violation.
  tmsan::on_tx_begin(false);
  tmsan::on_tx_read(&a, 99);
  tmsan::on_tx_commit(20);
  EXPECT_EQ(tmsan::violation_count(), 0u) << tmsan::report();
  EXPECT_GE(tmsan::opacity_unverifiable_reads(), 1u);
}

// --- stack-capture sampling (ADTM_TMSAN_STACK_SAMPLE) ----------------------

// Swap in a stack-sample rate via adtm::configure and restore the
// process-wide snapshot on scope exit.
class ScopedStackSample {
 public:
  explicit ScopedStackSample(std::uint32_t n) : saved_(runtime_config()) {
    RuntimeConfig cfg = saved_;
    cfg.tmsan_stack_sample = n;
    configure(cfg);
  }
  ~ScopedStackSample() { configure(saved_); }

 private:
  RuntimeConfig saved_;
};

// format_stack renders a sampled-out (depth 0) capture as this marker.
bool is_sampled_out(const std::string& stack) {
  return stack.empty() || stack == "  <no stack>" ||
         stack == "  <backtrace unavailable>";
}

TEST_F(TmsanTest, StackSamplingZeroStillDetectsRaces) {
  ScopedStackSample sample(0);
  tmsan::enable(tmsan::kCheckRace);
  run_mixed_mode_race();
  // Sampling thins the evidence, never the detection: the race is still
  // reported, with the violation-site stack intact and only the shadow
  // (bookkeeping) side missing.
  EXPECT_GE(tmsan::violation_count(tmsan::ViolationKind::MixedModeRace), 1u);
  for (const tmsan::Violation& v : tmsan::violations()) {
    if (v.kind != tmsan::ViolationKind::MixedModeRace) continue;
    EXPECT_TRUE(is_sampled_out(v.stack_b)) << v.stack_b;
  }
}

TEST_F(TmsanTest, DefaultStackSamplingCapturesBothSides) {
  ScopedStackSample sample(1);
  tmsan::enable(tmsan::kCheckRace);
  run_mixed_mode_race();
  ASSERT_GE(tmsan::violation_count(tmsan::ViolationKind::MixedModeRace), 1u);
  bool have_backtrace = false;
  bool saw_shadow_stack = false;
  for (const tmsan::Violation& v : tmsan::violations()) {
    if (v.kind != tmsan::ViolationKind::MixedModeRace) continue;
    if (v.stack_a.find('#') != std::string::npos) have_backtrace = true;
    if (!is_sampled_out(v.stack_b)) saw_shadow_stack = true;
  }
  if (!have_backtrace) GTEST_SKIP() << "backtrace() unavailable here";
  EXPECT_TRUE(saw_shadow_stack) << tmsan::report();
}

// --- clean concurrent workload under every checker -------------------------

TEST_F(TmsanTest, CleanDeferWorkloadReportsNothing) {
  tmsan::enable(tmsan::kCheckAll);
  Cell cell;
  tmsan::cover(&cell, sizeof cell, &cell.txlock());
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      stm::atomic([&](stm::Tx& tx) { (void)cell.get(tx); });
    }
  });
  for (int i = 0; i < 64; ++i) {
    stm::atomic([&](stm::Tx& tx) {
      cell.set(tx, i);
      atomic_defer(tx, [&cell, i] { cell.raw_set(i | 0x1000000); }, cell);
    });
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(tmsan::violation_count(), 0u) << tmsan::report();
}

}  // namespace
}  // namespace adtm
