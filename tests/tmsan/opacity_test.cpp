// Opacity stress: every algorithm, seeded conflicting schedules, the
// full checker armed. The assertion is the paper-level guarantee itself:
// no transaction — committed or aborted — ever observes an inconsistent
// snapshot, so the opacity checker must stay silent. Each written value
// is globally unique, so a violation report here would be a provable
// serializability break, not a value collision.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "stm/tvar.hpp"
#include "support/algo_param.hpp"
#include "tmsan/tmsan.hpp"

namespace adtm {
namespace {

constexpr std::uint64_t kSeed = 0x5EEDBA5EDULL;

class OpacityStressTest : public test::AlgoTest {
 protected:
  void SetUp() override {
    test::AlgoTest::SetUp();
    tmsan::disable(tmsan::kCheckAll);
    tmsan::reset();
    tmsan::enable(tmsan::kCheckAll);
  }
  void TearDown() override {
    tmsan::disable(tmsan::kCheckAll);
    tmsan::reset();
  }
};

void jitter(Xoshiro256& rng) {
  for (std::uint64_t i = rng.next_below(8); i > 0; --i) {
    std::this_thread::yield();
  }
}

TEST_P(OpacityStressTest, ConflictingSchedulesStayOpaque) {
  constexpr int kThreads = 4;
  constexpr int kWords = 6;  // few words => high conflict rate
  constexpr int kIters = 250;
  static stm::tvar<std::uint64_t> words[kWords];
  for (auto& w : words) {
    stm::atomic([&](stm::Tx& tx) { w.set(tx, 0); });
  }
  tmsan::reset();  // the seeding writes above are not part of the run

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      Xoshiro256 rng(kSeed + static_cast<std::uint64_t>(t));
      for (int iter = 0; iter < kIters; ++iter) {
        const auto i = static_cast<int>(rng.next_below(kWords));
        const auto j = static_cast<int>(rng.next_below(kWords));
        if (iter % 3 == 0) {
          // Read-only scan of two words with a yield between the reads —
          // the window where a non-opaque TM hands out torn snapshots.
          stm::atomic([&](stm::Tx& tx) {
            const std::uint64_t a = words[i].get(tx);
            jitter(rng);
            const std::uint64_t b = words[j].get(tx);
            (void)a;
            (void)b;
          });
        } else {
          // Update: read one word, write two, with unique values — the
          // value encodes (thread, iteration, word), so no two commits
          // ever publish the same value to the opacity history.
          stm::atomic([&](stm::Tx& tx) {
            (void)words[j].get(tx);
            jitter(rng);
            const auto tag = (static_cast<std::uint64_t>(t + 1) << 40) |
                             (static_cast<std::uint64_t>(iter + 1) << 8);
            words[i].set(tx, tag | static_cast<std::uint64_t>(i));
            words[j].set(tx, tag | static_cast<std::uint64_t>(j));
          });
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(tmsan::violation_count(tmsan::ViolationKind::OpacityViolation),
            0u)
      << tmsan::report();
  // A purely transactional workload has no mixed-mode or deferral
  // surface either: the armed sanitizer must be completely silent.
  EXPECT_EQ(tmsan::violation_count(), 0u) << tmsan::report();
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, OpacityStressTest, test::AllAlgos(),
                         test::algo_param_name);

}  // namespace
}  // namespace adtm
