// Contention manager: cross-transaction abort streaks and the starvation
// escalation ladder into serial-irrevocable mode.
#include "liveness/contention.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "common/thread_id.hpp"
#include "stm/api.hpp"
#include "stm/tvar.hpp"

namespace adtm {
namespace {

TEST(ContentionManager, StreakAccounting) {
  liveness::ContentionManager cm;
  const std::uint32_t me = thread_id();
  EXPECT_FALSE(cm.should_escalate(4));
  for (int i = 0; i < 4; ++i) cm.on_conflict_abort();
  EXPECT_EQ(cm.consecutive_aborts(me), 4u);
  EXPECT_EQ(cm.total_aborts(me), 4u);
  EXPECT_TRUE(cm.should_escalate(4));
  EXPECT_TRUE(cm.should_escalate(3));   // at-or-above threshold
  EXPECT_FALSE(cm.should_escalate(5));  // below threshold
  EXPECT_FALSE(cm.should_escalate(0));  // 0 disables escalation entirely
  cm.on_commit();
  EXPECT_EQ(cm.consecutive_aborts(me), 0u);
  EXPECT_EQ(cm.total_aborts(me), 4u);  // total survives the commit
  EXPECT_FALSE(cm.should_escalate(4));
  cm.on_escalation();
  EXPECT_EQ(cm.escalations(me), 1u);
  cm.reset();
  EXPECT_EQ(cm.total_aborts(me), 0u);
  EXPECT_EQ(cm.escalations(me), 0u);
}

TEST(ContentionManager, DefaultThresholdComesFromConfig) {
  // ADTM_STARVATION_THRESHOLD is unset in the test environment.
  stm::Config cfg;
  EXPECT_EQ(cfg.starvation_threshold, 64u);
}

TEST(ContentionManager, PrimedStreakTakesPriorityTokenNotSerial) {
  stm::Config cfg;
  cfg.backend = "tl2";
  cfg.starvation_threshold = 8;
  stm::init(cfg);
  stats().reset();
  auto& cm = liveness::contention();
  cm.reset();
  const std::uint32_t me = thread_id();
  // Prime the streak as if this thread had lost 8 conflicts across
  // previous transactions.
  for (int i = 0; i < 8; ++i) cm.on_conflict_abort();
  stm::tvar<int> x{0};
  stm::atomic([&](stm::Tx& tx) {
    x.set(tx, 1);
    // Rung 1 of the ladder: the starved thread takes the priority token
    // and keeps running *speculatively* — no serial escalation.
    EXPECT_FALSE(tx.irrevocable());
    EXPECT_TRUE(cm.has_priority());
  });
  EXPECT_EQ(stats().total(Counter::CmEscalations), 0u);
  EXPECT_EQ(stats().total(Counter::CmPriorityAcquired), 1u);
  EXPECT_EQ(cm.escalations(me), 0u);
  // The commit spent the karma: streak cleared, token handed back.
  EXPECT_EQ(cm.consecutive_aborts(me), 0u);
  EXPECT_EQ(cm.priority_thread(), kNoThread);
  EXPECT_FALSE(cm.priority_attempt_active());
  stm::atomic([&](stm::Tx& tx) {
    x.set(tx, 2);
    EXPECT_FALSE(tx.irrevocable());
    EXPECT_FALSE(cm.has_priority());
  });
  EXPECT_EQ(stats().total(Counter::CmPriorityAcquired), 1u);
  cm.reset();
  stm::init(stm::Config{});
}

TEST(ContentionManager, ThresholdZeroNeverEscalates) {
  stm::Config cfg;
  cfg.backend = "tl2";
  cfg.starvation_threshold = 0;
  stm::init(cfg);
  stats().reset();
  auto& cm = liveness::contention();
  cm.reset();
  for (int i = 0; i < 1000; ++i) cm.on_conflict_abort();
  stm::tvar<int> x{0};
  stm::atomic([&](stm::Tx& tx) {
    x.set(tx, 1);
    EXPECT_FALSE(tx.irrevocable());
  });
  EXPECT_EQ(stats().total(Counter::CmEscalations), 0u);
  cm.reset();
  stm::init(stm::Config{});
}

}  // namespace
}  // namespace adtm
