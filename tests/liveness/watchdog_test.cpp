// Watchdog: stall detection over the activity table and wait-graph report.
#include "liveness/watchdog.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>

#include "common/stats.hpp"
#include "defer/txlock.hpp"
#include "liveness/wait_graph.hpp"
#include "stm/api.hpp"

namespace adtm {
namespace {

using namespace std::chrono_literals;

liveness::WatchdogOptions tight_options() {
  liveness::WatchdogOptions opts;           // env/defaults...
  opts.stall_budget_ns = 1'000'000;         // ...but flag after 1 ms
  opts.interval_ns = 5'000'000;             // and sample every 5 ms
  opts.sink = nullptr;
  return opts;
}

TEST(Watchdog, DefaultOptionsComeFromEnv) {
  liveness::WatchdogOptions opts;
  EXPECT_EQ(opts.stall_budget_ns, 2000ull * 1000000);
  EXPECT_EQ(opts.interval_ns, 200ull * 1000000);
  EXPECT_TRUE(static_cast<bool>(opts.sink));
}

TEST(Watchdog, QuietWhenNothingIsStalled) {
  liveness::Watchdog wd;
  wd.configure(tight_options());
  EXPECT_EQ(wd.scan_once(), "");
  EXPECT_EQ(wd.stall_reports(), 0u);
}

TEST(Watchdog, ScanNamesParkedWaiterAndStalledLock) {
  stm::init(stm::Config{});
  stats().reset();
  TxLock lock;
  std::atomic<bool> held{false};
  std::atomic<bool> go_release{false};
  std::thread holder([&] {
    lock.acquire();
    held.store(true);
    while (!go_release.load()) std::this_thread::yield();
    lock.release();
  });
  while (!held.load()) std::this_thread::yield();
  std::atomic<bool> waiter_done{false};
  std::thread waiter([&] {
    lock.acquire();
    lock.release();
    waiter_done.store(true);
  });
  std::this_thread::sleep_for(100ms);  // waiter parks well past the budget
  liveness::Watchdog wd;
  wd.configure(tight_options());
  const std::string report = wd.scan_once();
  ASSERT_NE(report, "");
  // The stalled thread's park state and the lock it waits on are named.
  EXPECT_NE(report.find("retry-wait"), std::string::npos) << report;
  EXPECT_NE(report.find("TxLock::acquire"), std::string::npos) << report;
  EXPECT_NE(report.find("wait graph"), std::string::npos) << report;
  EXPECT_NE(report.find("owner"), std::string::npos) << report;
  go_release.store(true);
  holder.join();
  waiter.join();
  EXPECT_TRUE(waiter_done.load());
  // With everyone unblocked the same scan goes quiet again.
  EXPECT_EQ(wd.scan_once(), "");
}

TEST(Watchdog, BackgroundThreadReportsThroughSink) {
  stm::init(stm::Config{});
  stats().reset();
  TxLock lock;
  std::atomic<bool> held{false};
  std::atomic<bool> go_release{false};
  std::thread holder([&] {
    lock.acquire();
    held.store(true);
    while (!go_release.load()) std::this_thread::yield();
    lock.release();
  });
  while (!held.load()) std::this_thread::yield();
  std::thread waiter([&] {
    lock.acquire();
    lock.release();
  });

  std::mutex mu;
  std::string captured;
  liveness::WatchdogOptions opts = tight_options();
  opts.sink = [&](const std::string& report) {
    std::lock_guard<std::mutex> lk(mu);
    captured = report;
  };
  liveness::Watchdog wd;
  wd.start(std::move(opts));
  EXPECT_TRUE(wd.running());
  // Wait for the sampler to flag the parked waiter.
  for (int i = 0; i < 500 && wd.stall_reports() == 0; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_GE(wd.stall_reports(), 1u);
  wd.stop();
  EXPECT_FALSE(wd.running());
  EXPECT_NE(wd.last_report(), "");
  {
    std::lock_guard<std::mutex> lk(mu);
    EXPECT_NE(captured.find("TxLock::acquire"), std::string::npos)
        << captured;
  }
  EXPECT_GE(stats().total(Counter::WatchdogStalls), 1u);
  go_release.store(true);
  holder.join();
  waiter.join();
}

TEST(Watchdog, StopIsIdempotentAndRestartable) {
  liveness::Watchdog wd;
  wd.stop();  // never started: no-op
  wd.start(tight_options());
  EXPECT_TRUE(wd.running());
  wd.stop();
  wd.stop();
  EXPECT_FALSE(wd.running());
  wd.start(tight_options());
  EXPECT_TRUE(wd.running());
  wd.stop();
}

}  // namespace
}  // namespace adtm
