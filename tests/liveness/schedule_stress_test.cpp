// Deterministic schedule-perturbation stress for the liveness layer: the
// three historical hang shapes — cv-wait cycles, a starved writer under a
// commit hammer, and a dead-owner park — are reproduced under seeded
// yield/backoff jitter (common/rng) across the algorithms, and each must
// be detected or resolved well inside a generous backstop deadline rather
// than ride the deadline out.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/timing.hpp"
#include "defer/txcondvar.hpp"
#include "defer/txlock.hpp"
#include "liveness/contention.hpp"
#include "liveness/wait_graph.hpp"
#include "stm/tvar.hpp"
#include "support/algo_param.hpp"

namespace adtm {
namespace {

using namespace std::chrono_literals;

constexpr std::uint64_t kSeed = 0x5EEDBA5EDULL;
constexpr std::uint64_t kBackstopNs = 20'000'000'000ull;  // 20 s: a bug
constexpr std::uint64_t kPromptNs = 5'000'000'000ull;     // resolved = < 5 s

void spin_until(const std::atomic<bool>& flag) {
  while (!flag.load()) std::this_thread::yield();
}

// Seeded perturbation: yield a pseudo-random number of times so each
// iteration lands on a slightly different interleaving, reproducibly.
void jitter(Xoshiro256& rng) {
  for (std::uint64_t i = rng.next_below(8); i > 0; --i) {
    std::this_thread::yield();
  }
}

class ScheduleStressTest : public test::AlgoTest {
 protected:
  void SetUp() override {
    test::AlgoTest::SetUp();
    liveness::contention().reset();
  }
  void TearDown() override {
    liveness::contention().reset();
    stm::init(stm::Config{});
  }
};

// Two threads, two conditions, each thread registered as the notifier of
// the condition the *other* waits on: a wait cycle with zero locks held.
// Before cv edges joined the wait graph this parked both threads until
// the deadline; now at least one waiter's park-loop scan must raise
// DeadlockError promptly, and its handler resolves the other.
TEST_P(ScheduleStressTest, CvWaitCycleDetectedAndResolved) {
  TxCondVar cv_a, cv_b;
  stm::tvar<int> resolved{0};
  std::atomic<int> deadlocks{0};
  std::atomic<int> timeouts{0};
  std::atomic<bool> reg_a{false}, reg_b{false};
  const std::uint64_t start = now_ns();

  auto waiter = [&](TxCondVar& mine, std::atomic<bool>& mine_reg,
                    TxCondVar& other, std::atomic<bool>& other_reg,
                    std::uint64_t seed) {
    Xoshiro256 rng(seed);
    mine.set_notifier();
    mine_reg.store(true);
    spin_until(other_reg);
    jitter(rng);
    try {
      stm::atomic([&](stm::Tx& tx) {
        if (resolved.get(tx) != 0) return;  // peer broke the cycle
        other.wait(tx, Deadline::at(start + kBackstopNs));
      });
    } catch (const liveness::DeadlockError&) {
      deadlocks.fetch_add(1);
      // Breaking the cycle is the raiser's job: publish the resolution
      // (the committed write wakes the peer through its read set).
      stm::atomic([&](stm::Tx& tx) { resolved.set(tx, 1); });
    } catch (const stm::RetryTimeout&) {
      timeouts.fetch_add(1);
      stm::atomic([&](stm::Tx& tx) { resolved.set(tx, 1); });
    }
    mine.clear_notifier();
  };

  std::thread t1(waiter, std::ref(cv_a), std::ref(reg_a), std::ref(cv_b),
                 std::ref(reg_b), kSeed);
  std::thread t2(waiter, std::ref(cv_b), std::ref(reg_b), std::ref(cv_a),
                 std::ref(reg_a), kSeed ^ 0xFFFF);
  t1.join();
  t2.join();
  const std::uint64_t elapsed = now_ns() - start;
  EXPECT_GE(deadlocks.load(), 1) << "cv-only cycle never detected";
  EXPECT_EQ(timeouts.load(), 0) << "cycle rode the deadline out";
  EXPECT_LT(elapsed, kPromptNs) << "detection too slow: " << elapsed << " ns";
}

// A writer that has already lost `threshold` conflicts faces a hammer of
// rivals committing to its target. The starvation ladder must get it
// through within the prompt bound — whichever rung it takes — instead of
// letting it lose indefinitely.
TEST_P(ScheduleStressTest, StarvedWriterCommitsUnderHammer) {
  if (GetParam() == "CGL") GTEST_SKIP() << "CGL cannot starve";
  stm::Config cfg;
  cfg.backend = GetParam();
  cfg.starvation_threshold = 4;
  stm::init(cfg);

  stm::tvar<std::uint64_t> x{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> hammers;
  for (int i = 0; i < 2; ++i) {
    hammers.emplace_back([&, i] {
      Xoshiro256 rng(kSeed + static_cast<std::uint64_t>(i));
      while (!stop.load()) {
        stm::atomic([&](stm::Tx& tx) { x.set(tx, x.get(tx) + 1); });
        jitter(rng);
      }
    });
  }

  for (std::uint32_t i = 0; i < cfg.starvation_threshold; ++i) {
    liveness::contention().on_conflict_abort();
  }
  const std::uint64_t start = now_ns();
  stm::atomic([&](stm::Tx& tx) { x.set(tx, x.get(tx) + 1'000'000); });
  const std::uint64_t elapsed = now_ns() - start;
  stop.store(true);
  for (auto& t : hammers) t.join();
  EXPECT_LT(elapsed, kPromptNs) << "starved writer stalled " << elapsed;
  EXPECT_GE(x.load_direct(), 1'000'000u);
}

// A thread dies holding a TxLock while waiters are parked behind it. The
// park must resolve promptly via the thread-exit watch — under CGL this
// is the regression for the old deadline-only gap: nothing committed, so
// only the new exit-hook wakeup (or the tick re-check) can move waiters.
TEST_P(ScheduleStressTest, DeadOwnerParkResolvesPromptly) {
  TxLock lock;
  std::atomic<bool> held{false};
  std::atomic<bool> die{false};
  std::thread owner([&] {
    lock.acquire();
    held.store(true);
    spin_until(die);
    // exits holding the lock
  });
  spin_until(held);

  std::atomic<int> orphaned{0};
  std::atomic<int> timeouts{0};
  const std::uint64_t start = now_ns();
  std::vector<std::thread> waiters;
  for (int i = 0; i < 2; ++i) {
    waiters.emplace_back([&, i] {
      Xoshiro256 rng(kSeed * 31 + static_cast<std::uint64_t>(i));
      jitter(rng);
      try {
        stm::atomic([&](stm::Tx& tx) {
          lock.subscribe(tx, Deadline::at(start + kBackstopNs));
        });
      } catch (const TxLockOrphaned&) {
        orphaned.fetch_add(1);
      } catch (const stm::RetryTimeout&) {
        timeouts.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(50ms);  // everyone parks behind a live owner
  die.store(true);
  owner.join();
  for (auto& t : waiters) t.join();
  const std::uint64_t elapsed = now_ns() - start;
  EXPECT_EQ(orphaned.load(), 2);
  EXPECT_EQ(timeouts.load(), 0) << "dead owner noticed only at deadline";
  EXPECT_LT(elapsed, kPromptNs) << "orphan detection too slow: " << elapsed;
}

// Regression: a cv waiter that leaves its park via RetryTimeout (or any
// re-execution) must not leave a stale wait edge behind — a later real
// cycle must still be detected, and a stale edge must not fabricate one.
TEST_P(ScheduleStressTest, TimedOutCvEdgeIsRetractedThenRealCycleDetected) {
  TxCondVar lonely;  // never notified; no notifier registered
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 lonely.wait(tx, Deadline::at(now_ns() + 5'000'000));
               }),
               stm::RetryTimeout);
  // The edge died with the park: nothing published, nothing to cycle on.
  EXPECT_FALSE(liveness::has_wait_edge());
  for (const auto& e : liveness::snapshot_wait_edges()) {
    EXPECT_NE(e.entity, static_cast<const void*>(&lonely));
  }

  // And the detector still works after the timeout episode: build the
  // same two-thread cv cycle and expect a detection, not a timeout.
  TxCondVar cv_a, cv_b;
  stm::tvar<int> resolved{0};
  std::atomic<int> deadlocks{0};
  std::atomic<int> timeouts{0};
  std::atomic<bool> reg_a{false}, reg_b{false};
  const std::uint64_t start = now_ns();
  auto waiter = [&](TxCondVar& mine, std::atomic<bool>& mine_reg,
                    TxCondVar& other, std::atomic<bool>& other_reg) {
    mine.set_notifier();
    mine_reg.store(true);
    spin_until(other_reg);
    try {
      stm::atomic([&](stm::Tx& tx) {
        if (resolved.get(tx) != 0) return;
        other.wait(tx, Deadline::at(start + kBackstopNs));
      });
    } catch (const liveness::DeadlockError&) {
      deadlocks.fetch_add(1);
      stm::atomic([&](stm::Tx& tx) { resolved.set(tx, 1); });
    } catch (const stm::RetryTimeout&) {
      timeouts.fetch_add(1);
      stm::atomic([&](stm::Tx& tx) { resolved.set(tx, 1); });
    }
    mine.clear_notifier();
  };
  std::thread t1(waiter, std::ref(cv_a), std::ref(reg_a), std::ref(cv_b),
                 std::ref(reg_b));
  std::thread t2(waiter, std::ref(cv_b), std::ref(reg_b), std::ref(cv_a),
                 std::ref(reg_a));
  t1.join();
  t2.join();
  EXPECT_GE(deadlocks.load(), 1);
  EXPECT_EQ(timeouts.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, ScheduleStressTest, test::AllAlgos(),
                         test::algo_param_name);

}  // namespace
}  // namespace adtm
