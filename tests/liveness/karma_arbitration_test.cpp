// Priority-aware karma: rung 1 of the starvation ladder. A thread whose
// cross-transaction abort streak crosses the threshold takes the
// process-wide priority token and wins its next conflict *speculatively*
// — serial escalation (rung 2) fires only when the token is taken or
// privilege alone has not broken the streak.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/stats.hpp"
#include "common/thread_id.hpp"
#include "common/timing.hpp"
#include "defer/txlock.hpp"
#include "liveness/contention.hpp"
#include "stm/api.hpp"
#include "stm/tvar.hpp"

namespace adtm {
namespace {

using namespace std::chrono_literals;

void spin_until(const std::atomic<bool>& flag) {
  while (!flag.load()) std::this_thread::yield();
}

// Busy-wait inside a transaction body without sleeping the thread away on
// a single-core machine (plain sleep could let the scheduler skip the
// interleaving the test constructs).
void busy_ns(std::uint64_t ns) {
  const std::uint64_t until = now_ns() + ns;
  while (now_ns() < until) std::this_thread::yield();
}

class KarmaArbitrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    liveness::contention().reset();
    stats().reset();
  }
  void TearDown() override {
    liveness::contention().reset();
    stm::init(stm::Config{});
  }

  void init(const char* backend, std::uint32_t threshold = 4) {
    stm::Config cfg;
    cfg.backend = backend;
    cfg.starvation_threshold = threshold;
    stm::init(cfg);
  }

  void prime_streak(std::uint32_t n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      liveness::contention().on_conflict_abort();
    }
  }
};

TEST_F(KarmaArbitrationTest, TokenSemantics) {
  auto& cm = liveness::contention();
  const std::uint32_t me = thread_id();
  // Below threshold / disabled: no token.
  EXPECT_FALSE(cm.try_acquire_priority(4));
  prime_streak(4);
  EXPECT_FALSE(cm.try_acquire_priority(0));  // 0 disables the ladder
  // At threshold: taken, counted once, idempotent for the holder.
  EXPECT_TRUE(cm.try_acquire_priority(4));
  EXPECT_TRUE(cm.try_acquire_priority(4));
  EXPECT_EQ(stats().total(Counter::CmPriorityAcquired), 1u);
  EXPECT_TRUE(cm.has_priority());
  EXPECT_EQ(cm.priority_thread(), me);
  // Release is idempotent and clears the attempt shield with the token.
  cm.set_priority_attempt(true);
  cm.release_priority();
  EXPECT_FALSE(cm.has_priority());
  EXPECT_EQ(cm.priority_thread(), kNoThread);
  EXPECT_FALSE(cm.priority_attempt_active());
  cm.release_priority();
  EXPECT_EQ(cm.priority_thread(), kNoThread);
}

// Regression for the old locker_depth()==0 escalation gate: a starved
// thread that pins a TxLock across transactions could never serialize, so
// nothing ever arbitrated for it. Rung 1 must work exactly there.
TEST_F(KarmaArbitrationTest, PinnedHolderPastThresholdTakesToken) {
  init("tl2");
  auto& cm = liveness::contention();
  TxLock lock;
  lock.acquire();  // pinned across transactions: locker_depth() == 1
  prime_streak(4);
  stm::tvar<int> x{0};
  stm::atomic([&](stm::Tx& tx) {
    x.set(tx, 1);
    EXPECT_FALSE(tx.irrevocable());  // never serial while pinned
    EXPECT_TRUE(cm.has_priority());  // but privileged all the same
  });
  EXPECT_EQ(stats().total(Counter::CmEscalations), 0u);
  EXPECT_EQ(stats().total(Counter::CmPriorityAcquired), 1u);
  // Karma spent on commit: streak cleared, token returned.
  EXPECT_EQ(cm.consecutive_aborts(thread_id()), 0u);
  EXPECT_EQ(cm.priority_thread(), kNoThread);
  lock.release();
}

// Rung 2 when rung 1 is occupied: the token is held by another thread, so
// a starved thread escalates to serial as before. The helper then dies
// holding the token, and the thread-exit hook must reclaim it.
TEST_F(KarmaArbitrationTest, TokenTakenFallsBackToSerialAndExitReclaims) {
  init("tl2");
  auto& cm = liveness::contention();
  std::atomic<bool> token_held{false};
  std::atomic<bool> done{false};
  std::thread holder([&] {
    for (int i = 0; i < 4; ++i) cm.on_conflict_abort();
    ASSERT_TRUE(cm.try_acquire_priority(4));
    token_held.store(true);
    spin_until(done);
    // Exits without releasing: the exit hook must hand the token back.
  });
  spin_until(token_held);

  prime_streak(4);
  stm::tvar<int> x{0};
  stm::atomic([&](stm::Tx& tx) {
    x.set(tx, 1);
    EXPECT_TRUE(tx.irrevocable());  // token taken: serial escalation
    EXPECT_FALSE(cm.has_priority());
  });
  EXPECT_EQ(stats().total(Counter::CmEscalations), 1u);
  EXPECT_EQ(cm.consecutive_aborts(thread_id()), 0u);

  done.store(true);
  holder.join();
  // Token reclaimed by the dead holder's thread-exit hook, not leaked.
  EXPECT_EQ(cm.priority_thread(), kNoThread);
}

// The 2x-threshold backstop: when privilege alone has not broken the
// streak (conflicts arbitration cannot veto, e.g. validation failures),
// the holder hands the token on and serializes.
TEST_F(KarmaArbitrationTest, PrivilegeBackstopReleasesTokenAndSerializes) {
  init("tl2");
  auto& cm = liveness::contention();
  prime_streak(4);
  ASSERT_TRUE(cm.try_acquire_priority(4));
  prime_streak(4);  // streak now 8 = 2x threshold while privileged
  stm::tvar<int> x{0};
  stm::atomic([&](stm::Tx& tx) {
    x.set(tx, 1);
    EXPECT_TRUE(tx.irrevocable());
  });
  EXPECT_EQ(stats().total(Counter::CmEscalations), 1u);
  EXPECT_EQ(cm.priority_thread(), kNoThread);  // released at escalation
  EXPECT_EQ(cm.consecutive_aborts(thread_id()), 0u);
}

// The deterministic arbitration win (Eager, encounter-time locks): a rival
// holds the contended orec for ~10 ms — far past lock_spin_limit, so a
// normal thread would conflict-abort — and the privileged thread must
// outwait it and commit with zero conflict aborts and no serial mode.
// Fails on the pre-arbitration tree (the spin budget expires first).
TEST_F(KarmaArbitrationTest, PrivilegedWriterOutwaitsEagerLockHolder) {
  init("eager");
  stm::tvar<int> x{0};
  std::atomic<bool> rival_holds{false};
  std::thread rival([&] {
    stm::atomic([&](stm::Tx& tx) {
      x.set(tx, 1);  // encounter-time lock on x's orec, held for the body
      rival_holds.store(true);
      busy_ns(10'000'000);
    });
  });
  spin_until(rival_holds);

  prime_streak(4);
  const std::uint64_t conflicts_before =
      stats().total(Counter::TxAbortConflict);
  stm::atomic([&](stm::Tx& tx) {
    EXPECT_FALSE(tx.irrevocable());
    x.set(tx, 2);  // busy orec: outwait, do not abort
  });
  rival.join();
  EXPECT_EQ(stats().total(Counter::TxAbortConflict), conflicts_before);
  EXPECT_EQ(stats().total(Counter::CmEscalations), 0u);
  EXPECT_GE(stats().total(Counter::CmPriorityWins), 1u);
  EXPECT_EQ(x.load_direct(), 2);
}

// A low-karma writer that encounters the priority thread's orec steps
// aside immediately (CmPriorityYields) instead of burning its spin budget
// against the one thread arbitration favors.
TEST_F(KarmaArbitrationTest, RivalYieldsToPriorityThreadsOrec) {
  init("eager");
  auto& cm = liveness::contention();
  stm::tvar<int> x{0};
  prime_streak(4);
  ASSERT_TRUE(cm.try_acquire_priority(4));

  std::atomic<bool> privileged_holds{false};
  std::atomic<bool> rival_done{false};
  std::thread rival([&] {
    spin_until(privileged_holds);
    stm::atomic([&](stm::Tx& tx) { x.set(tx, 10); });
    rival_done.store(true);
  });
  stm::atomic([&](stm::Tx& tx) {
    x.set(tx, 1);  // holds x's orec while privileged
    privileged_holds.store(true);
    busy_ns(5'000'000);  // give the rival time to collide
  });
  spin_until(rival_done);
  rival.join();
  EXPECT_GE(stats().total(Counter::CmPriorityYields), 1u);
  EXPECT_EQ(x.load_direct(), 10);  // rival retried and won after the commit
}

// NOrec's conflict is the sequence-lock race, not an orec: rivals must
// hold their commit back while the privileged attempt is in flight, so a
// privileged body long enough to lose every race under a hammer still
// validates and commits without serial mode.
TEST_F(KarmaArbitrationTest, NorecRivalsHoldCommitBackForPriorityAttempt) {
  init("norec");
  auto& cm = liveness::contention();
  stm::tvar<std::uint64_t> x{0};
  std::atomic<bool> stop{false};
  std::thread hammer([&] {
    while (!stop.load()) {
      stm::atomic([&](stm::Tx& tx) { x.set(tx, x.get(tx) + 1); });
      std::this_thread::yield();
    }
  });

  prime_streak(4);
  std::uint64_t seen = 0;
  stm::atomic([&](stm::Tx& tx) {
    EXPECT_FALSE(tx.irrevocable());
    seen = x.get(tx);
    busy_ns(10'000'000);  // long window: unshielded, the hammer wins it
    x.set(tx, seen + 1'000'000);
  });
  stop.store(true);
  hammer.join();
  EXPECT_EQ(stats().total(Counter::CmEscalations), 0u);
  EXPECT_GE(stats().total(Counter::CmPriorityWins), 1u);
  EXPECT_GE(stats().total(Counter::CmPriorityYields), 1u);
  EXPECT_GE(x.load_direct(), 1'000'000u);
  EXPECT_EQ(cm.priority_thread(), kNoThread);  // spent on commit
}

}  // namespace
}  // namespace adtm
