// Acceptance stress: a TxLock holder is poisoned or killed mid-deferred-op.
// Every subscriber must unblock within the configured budget — by raising
// TxLockPoisoned / TxLockOrphaned — and the watchdog report taken during
// the stall must name the parked waiters and the stalled lock.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "common/timing.hpp"
#include "defer/atomic_defer.hpp"
#include "defer/deferrable.hpp"
#include "liveness/watchdog.hpp"
#include "stm/tvar.hpp"
#include "support/algo_param.hpp"

namespace adtm {
namespace {

using namespace std::chrono_literals;

constexpr int kSubscribers = 4;

struct Resource : Deferrable {
  stm::tvar<int> value{0};
};

void spin_until(const std::atomic<bool>& flag) {
  while (!flag.load()) std::this_thread::yield();
}

liveness::WatchdogOptions tight_options() {
  liveness::WatchdogOptions opts;
  opts.stall_budget_ns = 1'000'000;  // flag after 1 ms
  opts.sink = nullptr;
  return opts;
}

class StallStressTest : public test::AlgoTest {};

TEST_P(StallStressTest, PoisonedHolderUnblocksAllSubscribersWithinBudget) {
  Resource res;
  std::atomic<bool> op_started{false};
  std::atomic<bool> go_fail{false};

  // The owner commits a transaction whose deferred operation stalls and
  // then dies permanently while holding the resource's lock.
  std::thread owner([&] {
    FailurePolicy policy;
    policy.max_retries = 0;
    policy.poison_on_escalate = true;
    try {
      stm::atomic([&](stm::Tx& tx) {
        res.value.set(tx, 1);
        atomic_defer(
            tx,
            [&] {
              op_started.store(true);
              spin_until(go_fail);
              throw std::runtime_error("deferred op died mid-flight");
            },
            {&res}, policy);
      });
      ADD_FAILURE() << "the deferred failure must surface from atomic()";
    } catch (const std::runtime_error&) {
    }
  });
  spin_until(op_started);

  // Subscribers pile up behind the stalled deferred op, each with a
  // generous deadline as the backstop bound on the wait.
  std::atomic<int> poisoned{0};
  std::vector<std::thread> subs;
  for (int i = 0; i < kSubscribers; ++i) {
    subs.emplace_back([&] {
      const Deadline deadline = Deadline::at(now_ns() + 10'000'000'000ull);
      try {
        stm::atomic([&](stm::Tx& tx) {
          res.txlock().subscribe(tx, deadline);
          (void)res.value.get(tx);
        });
        ADD_FAILURE() << "subscriber ran while the failed op held the lock";
      } catch (const TxLockPoisoned&) {
        poisoned.fetch_add(1);
      } catch (const stm::RetryTimeout&) {
        ADD_FAILURE() << "budget expired before poison woke the subscriber";
      }
    });
  }
  std::this_thread::sleep_for(100ms);  // everyone parks, well past budget

  // Mid-stall diagnostics: the report names the stalled deferred op, the
  // parked subscribers, and the lock they wait on.
  liveness::Watchdog wd;
  wd.configure(tight_options());
  const std::string report = wd.scan_once();
  ASSERT_NE(report, "");
  EXPECT_NE(report.find("deferred-op"), std::string::npos) << report;
  EXPECT_NE(report.find("TxLock::subscribe"), std::string::npos) << report;

  // Let the op fail: escalation poisons the lock, releases it, and every
  // subscriber must unblock by raising.
  go_fail.store(true);
  owner.join();
  for (auto& t : subs) t.join();
  EXPECT_EQ(poisoned.load(), kSubscribers);
  EXPECT_TRUE(res.txlock().poisoned());
  EXPECT_GE(stats().total(Counter::LockPoisons), 1u);

  // Recovery: clear the poison and the resource is usable again.
  res.txlock().clear_poison();
  stm::atomic([&](stm::Tx& tx) {
    res.subscribe(tx);
    res.value.set(tx, 2);
  });
  EXPECT_EQ(wd.scan_once(), "");
}

TEST_P(StallStressTest, KilledHolderUnblocksSubscribersViaOrphanDetection) {
  Resource res;
  std::atomic<bool> held{false};
  std::atomic<bool> go_die{false};

  std::thread owner([&] {
    res.txlock().acquire();
    held.store(true);
    spin_until(go_die);
    // Thread exits still holding the lock: the "killed mid-deferred-op"
    // shape — no release, no poison, just a dead owner.
  });
  spin_until(held);

  std::atomic<int> orphaned{0};
  std::vector<std::thread> subs;
  for (int i = 0; i < kSubscribers; ++i) {
    subs.emplace_back([&] {
      const Deadline deadline = Deadline::at(now_ns() + 10'000'000'000ull);
      try {
        stm::atomic([&](stm::Tx& tx) {
          res.txlock().subscribe(tx, deadline);
        });
        ADD_FAILURE() << "subscriber ran while a dead owner held the lock";
      } catch (const TxLockOrphaned&) {
        orphaned.fetch_add(1);
      } catch (const stm::RetryTimeout&) {
        ADD_FAILURE() << "budget expired before orphan detection woke "
                         "the subscriber";
      }
    });
  }
  std::this_thread::sleep_for(50ms);  // subscribers park

  go_die.store(true);
  owner.join();
  // The global thread-exit watch wakes every parked subscriber; each
  // re-runs its owner-liveness check and raises.
  for (auto& t : subs) t.join();
  EXPECT_EQ(orphaned.load(), kSubscribers);

  // The dead thread's cross-transaction hold was reconciled at exit, so
  // the serial gate cannot wedge on it.
  EXPECT_GE(stats().total(Counter::LockLeaks), 1u);
  EXPECT_TRUE(res.txlock().orphaned());
  EXPECT_TRUE(res.txlock().break_orphaned());
  stm::atomic([&](stm::Tx& tx) { res.subscribe(tx); });
}

INSTANTIATE_TEST_SUITE_P(SpeculativeAlgos, StallStressTest,
                         test::SpeculativeAlgos(), test::algo_param_name);

}  // namespace
}  // namespace adtm
