// TxCondVar liveness: timed waits and poison wake-up — a waiter on a dead
// condition must raise, not hang.
#include "defer/txcondvar.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/stats.hpp"
#include "common/timing.hpp"
#include "stm/tvar.hpp"
#include "support/algo_param.hpp"

namespace adtm {
namespace {

using namespace std::chrono_literals;

class TxCondVarLivenessTest : public test::AlgoTest {};

TEST_P(TxCondVarLivenessTest, WaitForTimesOut) {
  TxCondVar cv;
  stm::tvar<int> gate{0};
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 if (gate.get(tx) == 0) cv.wait(tx, 30ms);
               }),
               stm::RetryTimeout);
  EXPECT_GE(stats().total(Counter::RetryTimeouts), 1u);
}

TEST_P(TxCondVarLivenessTest, WaitUntilHardDeadline) {
  TxCondVar cv;
  stm::tvar<int> gate{0};
  // An absolute deadline computed outside the transaction bounds the total
  // wait even across body re-executions.
  const Deadline deadline = Deadline::at(now_ns() + 30'000'000ull);
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 if (gate.get(tx) == 0) cv.wait(tx, deadline);
               }),
               stm::RetryTimeout);
}

TEST_P(TxCondVarLivenessTest, NotifyWakesTimedWaiterBeforeDeadline) {
  TxCondVar cv;
  stm::tvar<int> gate{0};
  std::atomic<bool> consumed{false};
  std::thread waiter([&] {
    const Deadline deadline = Deadline::at(now_ns() + 5'000'000'000ull);
    stm::atomic([&](stm::Tx& tx) {
      if (gate.get(tx) == 0) cv.wait(tx, deadline);
      gate.set(tx, 0);
    });
    consumed.store(true);
  });
  std::this_thread::sleep_for(20ms);
  stm::atomic([&](stm::Tx& tx) {
    gate.set(tx, 1);
    cv.notify_all(tx);
  });
  waiter.join();
  EXPECT_TRUE(consumed.load());
  EXPECT_EQ(stats().total(Counter::RetryTimeouts), 0u);
}

TEST_P(TxCondVarLivenessTest, PoisonedWaitRaisesImmediately) {
  TxCondVar cv;
  cv.poison();
  EXPECT_TRUE(cv.poisoned());
  EXPECT_THROW(
      stm::atomic([&](stm::Tx& tx) { cv.wait(tx); }),
      TxCondVarPoisoned);
  EXPECT_GE(stats().total(Counter::LockPoisons), 1u);
  cv.clear_poison();
  EXPECT_FALSE(cv.poisoned());
  // Functional again: a timed wait now times out instead of raising poison.
  EXPECT_THROW(
      stm::atomic([&](stm::Tx& tx) { cv.wait(tx, 20ms); }),
      stm::RetryTimeout);
}

TEST_P(TxCondVarLivenessTest, PoisonWakesParkedWaiter) {
  TxCondVar cv;
  stm::tvar<int> gate{0};
  std::atomic<bool> got_poisoned{false};
  std::thread waiter([&] {
    try {
      stm::atomic([&](stm::Tx& tx) {
        if (gate.get(tx) == 0) cv.wait(tx);
      });
      ADD_FAILURE() << "waiter returned without notify";
    } catch (const TxCondVarPoisoned&) {
      got_poisoned.store(true);
    }
  });
  std::this_thread::sleep_for(20ms);  // let the waiter park
  cv.poison();
  waiter.join();  // must unblock: poison is a committed write to its read set
  EXPECT_TRUE(got_poisoned.load());
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, TxCondVarLivenessTest, test::AllAlgos(),
                         test::algo_param_name);

}  // namespace
}  // namespace adtm
