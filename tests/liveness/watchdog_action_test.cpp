// Watchdog action policies: report-only stays the default; poison-orphans
// repairs entities whose responsible thread died (waking every parked
// subscriber exactly once per stall episode); reap-deferred composes with
// faultsim to cut a deferred op that would otherwise retry forever.
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "common/timing.hpp"
#include "defer/atomic_defer.hpp"
#include "defer/deferrable.hpp"
#include "defer/txcondvar.hpp"
#include "defer/txlock.hpp"
#include "faultsim/faultsim.hpp"
#include "io/posix_file.hpp"
#include "io/temp_dir.hpp"
#include "liveness/wait_graph.hpp"
#include "liveness/watchdog.hpp"
#include "stm/tvar.hpp"

namespace adtm {
namespace {

using namespace std::chrono_literals;

void spin_until(const std::atomic<bool>& flag) {
  while (!flag.load()) std::this_thread::yield();
}

liveness::WatchdogOptions action_options(liveness::WatchdogAction action) {
  liveness::WatchdogOptions opts;
  opts.stall_budget_ns = 1'000'000;  // act after 1 ms
  opts.action = action;
  opts.reap_after_budgets = 1;
  opts.sink = nullptr;
  return opts;
}

// Leave an orphaned, held TxLock behind: the owner incarnation dies
// without releasing.
void orphan_lock(TxLock& lock) {
  std::thread owner([&] { lock.acquire(); });
  owner.join();
  ASSERT_TRUE(lock.orphaned());
}

class WatchdogActionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stm::init(stm::Config{});
    stats().reset();
  }
};

TEST_F(WatchdogActionTest, ParseActionNames) {
  using liveness::WatchdogAction;
  using liveness::parse_watchdog_action;
  using liveness::watchdog_action_name;
  EXPECT_EQ(parse_watchdog_action("poison-orphans"),
            WatchdogAction::PoisonOrphans);
  EXPECT_EQ(parse_watchdog_action("reap-deferred"),
            WatchdogAction::ReapDeferred);
  EXPECT_EQ(parse_watchdog_action("enforce"), WatchdogAction::Enforce);
  EXPECT_EQ(parse_watchdog_action("report"), WatchdogAction::Report);
  EXPECT_EQ(parse_watchdog_action("???"), WatchdogAction::Report);
  for (auto a : {WatchdogAction::Report, WatchdogAction::PoisonOrphans,
                 WatchdogAction::ReapDeferred, WatchdogAction::Enforce}) {
    EXPECT_EQ(parse_watchdog_action(watchdog_action_name(a)), a);
  }
}

TEST_F(WatchdogActionTest, DefaultOptionsAreReportOnly) {
  liveness::WatchdogOptions opts;  // ADTM_WATCHDOG_ACTION unset in tests
  EXPECT_EQ(opts.action, liveness::WatchdogAction::Report);
  EXPECT_EQ(opts.reap_after_budgets, 4u);
}

// Report-only must observe, never repair: the orphaned lock stays exactly
// as the dead owner left it.
TEST_F(WatchdogActionTest, ReportOnlyTakesNoAction) {
  TxLock lock;
  orphan_lock(lock);
  // Simulate a parked waiter's edge (the enforcement pass acts only on
  // entities reachable through live wait edges).
  liveness::publish_wait(&lock, &TxLock::owner_of, "TxLock::subscribe",
                         liveness::WaitKind::Lock, &TxLock::orphan_of,
                         &TxLock::poison_orphan);
  std::this_thread::sleep_for(5ms);  // past the 1 ms budget

  liveness::Watchdog wd;
  wd.configure(action_options(liveness::WatchdogAction::Report));
  const std::string report = wd.scan_once();
  liveness::clear_wait();
  EXPECT_EQ(stats().total(Counter::WatchdogActions), 0u);
  EXPECT_FALSE(lock.poisoned());
  EXPECT_TRUE(lock.orphaned());  // untouched
  EXPECT_EQ(report.find("watchdog action"), std::string::npos) << report;
  ASSERT_TRUE(lock.break_orphaned());
}

// poison-orphans on a lock edge: poisoned and broken in one action, and
// exactly once — the follow-up scan re-arms (entity repaired) without
// firing again.
TEST_F(WatchdogActionTest, PoisonOrphansRepairsOrphanedLockOnce) {
  TxLock lock;
  orphan_lock(lock);
  liveness::publish_wait(&lock, &TxLock::owner_of, "TxLock::subscribe",
                         liveness::WaitKind::Lock, &TxLock::orphan_of,
                         &TxLock::poison_orphan);
  std::this_thread::sleep_for(5ms);

  std::atomic<int> events{0};
  liveness::Watchdog wd;
  auto opts = action_options(liveness::WatchdogAction::PoisonOrphans);
  opts.on_action = [&](const liveness::WatchdogEvent& ev) {
    EXPECT_EQ(ev.kind, liveness::WatchdogEvent::Kind::OrphanPoisoned);
    EXPECT_EQ(ev.entity, static_cast<const void*>(&lock));
    events.fetch_add(1);
  };
  wd.configure(std::move(opts));

  const std::string report = wd.scan_once();
  EXPECT_NE(report.find("watchdog action: poisoned"), std::string::npos)
      << report;
  EXPECT_TRUE(lock.poisoned());
  EXPECT_FALSE(lock.orphaned());  // broken: owner cleared
  EXPECT_EQ(events.load(), 1);
  EXPECT_EQ(stats().total(Counter::WatchdogActions), 1u);

  // Re-publish the waiter's edge (the repair transaction above ran on
  // this thread, and starting a transaction retracts the thread's stale
  // edge): the entity is repaired, so this scan re-arms without firing.
  liveness::publish_wait(&lock, &TxLock::owner_of, "TxLock::subscribe",
                         liveness::WaitKind::Lock, &TxLock::orphan_of,
                         &TxLock::poison_orphan);
  (void)wd.scan_once();
  liveness::clear_wait();
  EXPECT_EQ(events.load(), 1);
  EXPECT_EQ(stats().total(Counter::WatchdogActions), 1u);
  lock.clear_poison();
}

// poison-orphans on a condvar whose registered notifier died: every
// parked waiter wakes and raises TxCondVarPoisoned, from one action.
TEST_F(WatchdogActionTest, PoisonOrphansWakesAllCvWaiters) {
  constexpr int kWaiters = 3;
  TxCondVar cv;
  std::atomic<bool> registered{false};
  std::thread notifier([&] {
    cv.set_notifier();
    registered.store(true);
    // Dies responsible: never notifies, never unregisters.
  });
  spin_until(registered);
  notifier.join();

  std::atomic<int> poisoned{0};
  std::atomic<int> timeouts{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      try {
        stm::atomic([&](stm::Tx& tx) {
          cv.wait(tx, Deadline::at(now_ns() + 10'000'000'000ull));
        });
      } catch (const TxCondVarPoisoned&) {
        poisoned.fetch_add(1);
      } catch (const stm::RetryTimeout&) {
        timeouts.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(20ms);  // all parked, past the budget

  std::atomic<int> events{0};
  liveness::Watchdog wd;
  auto opts = action_options(liveness::WatchdogAction::PoisonOrphans);
  opts.on_action = [&](const liveness::WatchdogEvent&) {
    events.fetch_add(1);
  };
  wd.configure(std::move(opts));
  (void)wd.scan_once();

  for (auto& t : waiters) t.join();
  EXPECT_EQ(poisoned.load(), kWaiters);
  EXPECT_EQ(timeouts.load(), 0);
  EXPECT_EQ(events.load(), 1);  // one entity, one action, K waiters woken
  EXPECT_EQ(stats().total(Counter::WatchdogActions), 1u);
  EXPECT_TRUE(cv.poisoned());
  cv.clear_poison();
  cv.clear_notifier();
}

// reap-deferred composed with faultsim: a deferred write fails with
// ENOSPC forever and would retry effectively unbounded; the watchdog's
// reap flag makes the failure-policy loop escalate instead, which (with
// poison_on_escalate) poisons the resource lock and surfaces the error.
TEST_F(WatchdogActionTest, ReapDeferredCutsUnboundedRetryLoop) {
  struct Resource : Deferrable {
    stm::tvar<int> value{0};
  };
  io::TempDir dir("adtm_reap");
  io::PosixFile file = io::PosixFile::create(dir.path() + "/out.bin");
  faultsim::FaultScope faults({.op = faultsim::Op::Write,
                               .fault = faultsim::Fault::error(ENOSPC),
                               .count = 0});  // forever

  std::atomic<int> reap_events{0};
  liveness::Watchdog wd;
  auto opts = action_options(liveness::WatchdogAction::ReapDeferred);
  opts.interval_ns = 5'000'000;  // sample every 5 ms
  opts.on_action = [&](const liveness::WatchdogEvent& ev) {
    EXPECT_EQ(ev.kind, liveness::WatchdogEvent::Kind::DeferredReaped);
    reap_events.fetch_add(1);
  };
  wd.start(std::move(opts));

  Resource res;
  FailurePolicy policy;
  policy.max_retries = 1u << 30;  // effectively unbounded
  policy.backoff_min_spins = 16;
  policy.backoff_max_spins = 256;
  policy.poison_on_escalate = true;
  const char payload[16] = "watchdog-reaped";
  bool surfaced = false;
  try {
    stm::atomic([&](stm::Tx& tx) {
      res.value.set(tx, 1);
      atomic_defer(
          tx, [&] { file.write_fully(payload, sizeof payload); }, {&res},
          policy);
    });
  } catch (const std::system_error& e) {
    surfaced = (e.code().value() == ENOSPC);
  }
  wd.stop();
  EXPECT_TRUE(surfaced) << "deferred failure never escalated";
  EXPECT_GE(reap_events.load(), 1);
  EXPECT_GE(stats().total(Counter::WatchdogActions), 1u);
  EXPECT_GE(stats().total(Counter::FailureEscalations), 1u);
  EXPECT_TRUE(res.txlock().poisoned());
  res.txlock().clear_poison();
}

}  // namespace
}  // namespace adtm
