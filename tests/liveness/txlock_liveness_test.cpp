// Liveness behaviour of TxLock: bounded waits, poison, orphan detection,
// deadlock detection over committed holds, and release-misuse auditing.
#include "defer/txlock.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "common/stats.hpp"
#include "common/thread_id.hpp"
#include "common/timing.hpp"
#include "liveness/wait_graph.hpp"
#include "support/algo_param.hpp"

namespace adtm {
namespace {

using namespace std::chrono_literals;

class TxLockLivenessTest : public test::AlgoTest {};

void spin_until(const std::atomic<bool>& flag) {
  while (!flag.load()) std::this_thread::yield();
}

TEST_P(TxLockLivenessTest, AcquireForTimesOutOnContendedLock) {
  TxLock lock;
  std::atomic<bool> held{false};
  std::atomic<bool> go_release{false};
  std::thread holder([&] {
    lock.acquire();
    held.store(true);
    spin_until(go_release);
    lock.release();
  });
  spin_until(held);
  EXPECT_FALSE(lock.acquire(Deadline(30ms)));
  EXPECT_GE(stats().total(Counter::RetryTimeouts), 1u);
  go_release.store(true);
  holder.join();
  // Free again: a generous timed acquire succeeds, and owns the lock.
  ASSERT_TRUE(lock.acquire(Deadline(5s)));
  EXPECT_TRUE(lock.held_by_me());
  lock.release();
}

TEST_P(TxLockLivenessTest, AcquireUntilSucceedsOnceHolderReleases) {
  TxLock lock;
  std::atomic<bool> held{false};
  std::thread holder([&] {
    lock.acquire();
    held.store(true);
    std::this_thread::sleep_for(20ms);
    lock.release();
  });
  spin_until(held);
  EXPECT_TRUE(lock.acquire(Deadline::at(now_ns() + 5'000'000'000ull)));
  lock.release();
  holder.join();
}

TEST_P(TxLockLivenessTest, SubscribeForTimesOutThenSucceeds) {
  TxLock lock;
  std::atomic<bool> held{false};
  std::atomic<bool> go_release{false};
  std::thread holder([&] {
    lock.acquire();
    held.store(true);
    spin_until(go_release);
    lock.release();
  });
  spin_until(held);
  EXPECT_FALSE(lock.subscribe(Deadline(30ms)));
  go_release.store(true);
  holder.join();
  EXPECT_TRUE(lock.subscribe(Deadline(5s)));
}

TEST_P(TxLockLivenessTest, TimedAcquireInsideTransactionRaisesOutOfAtomic) {
  TxLock lock;
  std::atomic<bool> held{false};
  std::atomic<bool> go_release{false};
  std::thread holder([&] {
    lock.acquire();
    held.store(true);
    spin_until(go_release);
    lock.release();
  });
  spin_until(held);
  const Deadline deadline = Deadline::at(now_ns() + 30'000'000ull);
  EXPECT_THROW(
      stm::atomic([&](stm::Tx& tx) { lock.acquire(tx, deadline); }),
      stm::RetryTimeout);
  go_release.store(true);
  holder.join();
}

TEST_P(TxLockLivenessTest, PoisonedLockRefusesAcquireUntilCleared) {
  TxLock lock;
  lock.poison();
  EXPECT_TRUE(lock.poisoned());
  EXPECT_THROW(lock.acquire(), TxLockPoisoned);
  EXPECT_THROW(lock.try_acquire(), TxLockPoisoned);
  EXPECT_THROW(
      stm::atomic([&](stm::Tx& tx) { lock.subscribe(tx); }),
      TxLockPoisoned);
  EXPECT_GE(stats().total(Counter::LockPoisons), 1u);
  lock.clear_poison();
  EXPECT_FALSE(lock.poisoned());
  lock.acquire();
  lock.release();
}

TEST_P(TxLockLivenessTest, PoisonWakesParkedWaiter) {
  TxLock lock;
  std::atomic<bool> held{false};
  std::atomic<bool> waiter_up{false};
  std::atomic<bool> got_poisoned{false};
  std::thread holder([&] {
    lock.acquire();
    held.store(true);
    // Keep holding; the waiter must be woken by poison, not by release.
    spin_until(got_poisoned);
    lock.release();
  });
  spin_until(held);
  std::thread waiter([&] {
    waiter_up.store(true);
    try {
      lock.acquire();
      ADD_FAILURE() << "acquire succeeded on a poisoned lock";
    } catch (const TxLockPoisoned&) {
      got_poisoned.store(true);
    }
  });
  spin_until(waiter_up);
  std::this_thread::sleep_for(20ms);  // let the waiter park
  lock.poison();
  waiter.join();
  holder.join();
  EXPECT_TRUE(got_poisoned.load());
  lock.clear_poison();
}

TEST_P(TxLockLivenessTest, OrphanedLockIsDetectedAndBreakable) {
  TxLock lock;
  std::thread([&] { lock.acquire(); }).join();  // exits holding the lock
  EXPECT_TRUE(lock.orphaned());
  EXPECT_THROW(lock.acquire(), TxLockOrphaned);
  EXPECT_THROW(
      stm::atomic([&](stm::Tx& tx) { lock.subscribe(tx); }),
      TxLockOrphaned);
  // The dead thread's cross-transaction hold was reconciled at exit.
  EXPECT_GE(stats().total(Counter::LockLeaks), 1u);
  EXPECT_TRUE(lock.break_orphaned());
  EXPECT_FALSE(lock.orphaned());
  lock.acquire();
  lock.release();
  EXPECT_FALSE(lock.break_orphaned());  // free lock: nothing to break
}

TEST_P(TxLockLivenessTest, OwnerExitWakesParkedWaiter) {
  TxLock lock;
  std::atomic<bool> held{false};
  std::atomic<bool> go_exit{false};
  std::atomic<bool> got_orphaned{false};
  std::thread holder([&] {
    lock.acquire();
    held.store(true);
    spin_until(go_exit);
    // exits without releasing
  });
  spin_until(held);
  std::thread waiter([&] {
    try {
      lock.acquire();
      ADD_FAILURE() << "acquired a lock whose owner died holding it";
    } catch (const TxLockOrphaned&) {
      got_orphaned.store(true);
    }
  });
  std::this_thread::sleep_for(20ms);  // let the waiter park
  go_exit.store(true);
  holder.join();
  waiter.join();  // must unblock promptly via the thread-exit watch
  EXPECT_TRUE(got_orphaned.load());
  EXPECT_TRUE(lock.break_orphaned());
}

TEST_P(TxLockLivenessTest, ReleaseMisuseIsAuditedWithClearErrors) {
  TxLock lock;
  // Never acquired.
  EXPECT_THROW(lock.release(), std::logic_error);
  lock.acquire();
  // Another thread is not the owner.
  std::thread other([&] { EXPECT_THROW(lock.release(), std::logic_error); });
  other.join();
  lock.release();
  // Double release.
  EXPECT_THROW(lock.release(), std::logic_error);
}

TEST_P(TxLockLivenessTest, ReleaseFromRecycledThreadIdIsRejected) {
  TxLock lock;
  std::atomic<std::uint32_t> holder_id{kNoThread};
  std::thread([&] {
    lock.acquire();
    holder_id.store(thread_id());
  }).join();
  // A fresh thread — it typically reuses the lowest free slot, i.e. the
  // dead holder's id. Whether or not the id matches, releasing must be
  // rejected: this thread never acquired the lock.
  std::thread([&] {
    EXPECT_FALSE(lock.held_by_me());
    EXPECT_THROW(lock.release(), std::logic_error);
    if (thread_id() == holder_id.load()) {
      // Same slot id as the dead owner: only the incarnation check can
      // tell this apart from a legitimate release.
      EXPECT_TRUE(lock.orphaned());
    }
  }).join();
  EXPECT_TRUE(lock.break_orphaned());
}

TEST_P(TxLockLivenessTest, DeadlockThroughCommittedHoldsIsDetected) {
  TxLock a;
  TxLock b;
  std::atomic<bool> t1_has_a{false};
  std::atomic<bool> t2_has_b{false};
  std::atomic<int> deadlocks{0};
  std::thread t1([&] {
    a.acquire();  // committed hold: pinned across transactions
    t1_has_a.store(true);
    spin_until(t2_has_b);
    try {
      b.acquire();
      b.release();
    } catch (const liveness::DeadlockError&) {
      deadlocks.fetch_add(1);
    }
    a.release();
  });
  std::thread t2([&] {
    b.acquire();
    t2_has_b.store(true);
    spin_until(t1_has_a);
    try {
      a.acquire();
      a.release();
    } catch (const liveness::DeadlockError&) {
      deadlocks.fetch_add(1);
    }
    b.release();
  });
  t1.join();
  t2.join();
  // At least one side must detect the cycle and raise; raising releases
  // its wait, which in turn unblocks the other side.
  EXPECT_GE(deadlocks.load(), 1);
  EXPECT_GE(stats().total(Counter::DeadlocksDetected), 1u);
  // Both locks are usable again.
  a.acquire();
  a.release();
  b.acquire();
  b.release();
}

TEST_P(TxLockLivenessTest, TransactionalMultiLockNeverFalselyDeadlocks) {
  // Opposite acquisition orders inside transactions: the classic deadlock
  // recipe, which TM resolves by abort-and-retry (no hold-and-wait). The
  // detector must stay silent — these threads pin no committed holds.
  TxLock a;
  TxLock b;
  auto worker = [](TxLock& first, TxLock& second) {
    for (int i = 0; i < 100; ++i) {
      stm::atomic([&](stm::Tx& tx) {
        first.acquire(tx);
        second.acquire(tx);
        second.release(tx);
        first.release(tx);
      });
    }
  };
  std::thread t1(worker, std::ref(a), std::ref(b));
  std::thread t2(worker, std::ref(b), std::ref(a));
  t1.join();
  t2.join();
  EXPECT_EQ(stats().total(Counter::DeadlocksDetected), 0u);
}

INSTANTIATE_TEST_SUITE_P(SpeculativeAlgos, TxLockLivenessTest,
                         test::SpeculativeAlgos(), test::algo_param_name);

TEST(TxLockLivenessCgl, TimedAcquireAndPoisonWakeUnderCgl) {
  stm::Config cfg;
  cfg.backend = "cgl";
  stm::init(cfg);
  stats().reset();
  TxLock lock;
  std::atomic<bool> held{false};
  std::atomic<bool> got_poisoned{false};
  std::thread holder([&] {
    lock.acquire();
    held.store(true);
    spin_until(got_poisoned);
    lock.release();
  });
  spin_until(held);
  // CGL retry waiters park on the global commit condition variable; the
  // deadline must still bound the wait...
  EXPECT_FALSE(lock.acquire(Deadline(30ms)));
  // ...and a committed poison write must wake them.
  std::thread waiter([&] {
    try {
      lock.acquire();
      ADD_FAILURE() << "acquire succeeded on a poisoned lock";
    } catch (const TxLockPoisoned&) {
      got_poisoned.store(true);
    }
  });
  std::this_thread::sleep_for(20ms);
  lock.poison();
  waiter.join();
  holder.join();
  EXPECT_TRUE(got_poisoned.load());
  lock.clear_poison();
  stm::init(stm::Config{});
}

}  // namespace
}  // namespace adtm
