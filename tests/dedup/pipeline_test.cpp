// End-to-end dedup pipeline: restore(dedup(x)) == x across every sync mode
// and TM algorithm, plus dedup-effectiveness and stats invariants.
#include "dedup/pipeline.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "dedup/format.hpp"
#include "dedup/synth_input.hpp"
#include "io/posix_file.hpp"
#include "io/temp_dir.hpp"
#include "stm/api.hpp"

namespace adtm::dedup {
namespace {

class PipelineTest
    : public ::testing::TestWithParam<std::tuple<SyncMode, std::string>> {
 protected:
  void SetUp() override {
    stm::Config cfg;
    cfg.backend = std::get<1>(GetParam());
    // Keep the HTM capacity small enough that compress-in-tx overflows,
    // as on real hardware (exercises the fallback path in the pipeline).
    cfg.htm_capacity = 64;
    stm::init(cfg);
  }

  Options options(unsigned workers = 3) const {
    Options o;
    o.mode = std::get<0>(GetParam());
    o.workers = workers;
    o.fsync_every = 8;
    return o;
  }

  io::TempDir dir_{"adtm-pipeline"};
};

TEST_P(PipelineTest, RoundTripSmall) {
  const std::string input = make_synthetic_input(
      {.total_bytes = 200 * 1024, .dup_fraction = 0.4, .seed = 1});
  const std::string out = dir_.file("out.dd");
  const PipelineStats stats = dedup_stream(input, out, options());
  EXPECT_EQ(restore_str(io::read_file(out)), input);
  EXPECT_EQ(stats.bytes_in, input.size());
  EXPECT_GT(stats.chunks, 0u);
  EXPECT_EQ(stats.chunks, stats.unique_chunks + stats.dup_chunks);
}

TEST_P(PipelineTest, RoundTripWithHeavyDuplication) {
  const std::string input = make_synthetic_input(
      {.total_bytes = 300 * 1024, .dup_fraction = 0.85, .seed = 2});
  const std::string out = dir_.file("out.dd");
  const PipelineStats stats = dedup_stream(input, out, options());
  EXPECT_EQ(restore_str(io::read_file(out)), input);
  // Duplication must be detected.
  EXPECT_GT(stats.dup_chunks, 0u);
  // And exploited: output smaller than a no-dedup compression would be.
  EXPECT_LT(stats.bytes_out, stats.bytes_in);
}

TEST_P(PipelineTest, RoundTripNoDuplication) {
  const std::string input = make_synthetic_input(
      {.total_bytes = 150 * 1024, .dup_fraction = 0.0, .seed = 3});
  const std::string out = dir_.file("out.dd");
  const PipelineStats stats = dedup_stream(input, out, options());
  EXPECT_EQ(restore_str(io::read_file(out)), input);
  EXPECT_EQ(stats.unique_chunks, stats.chunks);
}

TEST_P(PipelineTest, EmptyInputProducesValidContainer) {
  const std::string out = dir_.file("out.dd");
  const PipelineStats stats = dedup_stream(std::string{}, out, options());
  EXPECT_EQ(stats.chunks, 0u);
  EXPECT_EQ(restore_str(io::read_file(out)), "");
}

TEST_P(PipelineTest, SingleWorker) {
  const std::string input = make_synthetic_input(
      {.total_bytes = 100 * 1024, .dup_fraction = 0.5, .seed = 4});
  const std::string out = dir_.file("out.dd");
  dedup_stream(input, out, options(/*workers=*/1));
  EXPECT_EQ(restore_str(io::read_file(out)), input);
}

TEST_P(PipelineTest, ManyWorkers) {
  const std::string input = make_synthetic_input(
      {.total_bytes = 200 * 1024, .dup_fraction = 0.5, .seed = 5});
  const std::string out = dir_.file("out.dd");
  dedup_stream(input, out, options(/*workers=*/8));
  EXPECT_EQ(restore_str(io::read_file(out)), input);
}

TEST_P(PipelineTest, MultiFragmentInputsRoundTrip) {
  // Force many coarse fragments so the Fragment->Refine handoff and the
  // (fragment, chunk) reordering actually engage.
  const std::string input = make_synthetic_input(
      {.total_bytes = 300 * 1024, .dup_fraction = 0.5, .seed = 77});
  Options o = options();
  o.fragment_bytes = 16 * 1024;  // ~19 fragments
  const std::string out = dir_.file("out.dd");
  const PipelineStats stats = dedup_stream(input, out, o);
  EXPECT_EQ(restore_str(io::read_file(out)), input);
  EXPECT_GT(stats.chunks, 19u);
}

TEST_P(PipelineTest, TinyFragmentsStillCorrect) {
  const std::string input = make_synthetic_input(
      {.total_bytes = 64 * 1024, .dup_fraction = 0.3, .seed = 78});
  Options o = options();
  o.fragment_bytes = 1024;  // smaller than a typical chunk
  const std::string out = dir_.file("out.dd");
  dedup_stream(input, out, o);
  EXPECT_EQ(restore_str(io::read_file(out)), input);
}

TEST_P(PipelineTest, OutputIsDeterministicAcrossModes) {
  // The container content depends only on the input (chunking and claim
  // order are sequence-ordered), so every mode must produce an equivalent
  // stream that restores identically. We check restore-equality rather
  // than byte-equality to stay robust to claim races... but with a single
  // reorder thread claims are in sequence order, so bytes match too.
  const std::string input = make_synthetic_input(
      {.total_bytes = 120 * 1024, .dup_fraction = 0.6, .seed = 6});
  const std::string out = dir_.file("out.dd");
  dedup_stream(input, out, options());

  Options pthread_opts = options();
  pthread_opts.mode = SyncMode::Pthread;
  const std::string ref = dir_.file("ref.dd");
  dedup_stream(input, ref, pthread_opts);

  EXPECT_EQ(io::read_file(out), io::read_file(ref));
}

INSTANTIATE_TEST_SUITE_P(
    Modes, PipelineTest,
    ::testing::Values(
        std::tuple{SyncMode::Pthread, std::string("TL2")},
        std::tuple{SyncMode::TmIrrevoc, std::string("TL2")},
        std::tuple{SyncMode::TmIrrevoc, std::string("Eager")},
        std::tuple{SyncMode::TmIrrevoc, std::string("HTMSim")},
        std::tuple{SyncMode::TmDeferIO, std::string("TL2")},
        std::tuple{SyncMode::TmDeferIO, std::string("HTMSim")},
        std::tuple{SyncMode::TmDeferAll, std::string("TL2")},
        std::tuple{SyncMode::TmDeferAll, std::string("Eager")},
        std::tuple{SyncMode::TmDeferAll, std::string("HTMSim")},
        std::tuple{SyncMode::TmIrrevoc, std::string("NOrec")},
        std::tuple{SyncMode::TmDeferIO, std::string("NOrec")},
        std::tuple{SyncMode::TmDeferAll, std::string("NOrec")}),
    [](const auto& info) {
      std::string name = std::string(sync_mode_name(std::get<0>(info.param))) +
                         "_" + std::get<1>(info.param);
      std::erase_if(name, [](char c) {
        return !std::isalnum(static_cast<unsigned char>(c)) && c != '_';
      });
      return name;
    });

}  // namespace
}  // namespace adtm::dedup
