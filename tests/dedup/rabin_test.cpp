// Content-defined chunking properties.
#include "dedup/rabin.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "common/rng.hpp"
#include "dedup/synth_input.hpp"

namespace adtm::dedup {
namespace {

std::span<const std::byte> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

TEST(RabinRoller, DeterministicForSameBytes) {
  RabinRoller a(48), b(48);
  Xoshiro256 rng{7};
  std::uint64_t last_a = 0, last_b = 0;
  for (int i = 0; i < 4096; ++i) {
    const auto byte = static_cast<std::uint8_t>(rng.next());
    last_a = a.roll(byte);
  }
  rng.reseed(7);
  for (int i = 0; i < 4096; ++i) {
    const auto byte = static_cast<std::uint8_t>(rng.next());
    last_b = b.roll(byte);
  }
  EXPECT_EQ(last_a, last_b);
}

TEST(RabinRoller, FingerprintDependsOnlyOnWindow) {
  // After sliding past the window, different prefixes must not matter.
  constexpr std::size_t kWindow = 16;
  RabinRoller a(kWindow), b(kWindow);
  for (int i = 0; i < 100; ++i) a.roll(static_cast<std::uint8_t>(i * 37));
  for (int i = 0; i < 250; ++i) b.roll(static_cast<std::uint8_t>(i * 11 + 5));
  // Now feed both the same window-full of bytes.
  std::uint64_t fa = 0, fb = 0;
  for (std::size_t i = 0; i < kWindow; ++i) {
    fa = a.roll(static_cast<std::uint8_t>(i + 1));
    fb = b.roll(static_cast<std::uint8_t>(i + 1));
  }
  EXPECT_EQ(fa, fb);
}

TEST(RabinRoller, ResetClearsState) {
  RabinRoller a(8);
  for (int i = 0; i < 64; ++i) a.roll(static_cast<std::uint8_t>(i));
  a.reset();
  RabinRoller b(8);
  EXPECT_EQ(a.roll(42), b.roll(42));
}

TEST(ChunkLengths, SumsToInputSize) {
  const std::string input = make_synthetic_input({.total_bytes = 300000});
  const auto lengths = chunk_lengths(as_bytes(input));
  const std::size_t total =
      std::accumulate(lengths.begin(), lengths.end(), std::size_t{0});
  EXPECT_EQ(total, input.size());
}

TEST(ChunkLengths, RespectsMinAndMax) {
  const std::string input = make_synthetic_input({.total_bytes = 300000});
  ChunkParams params;
  params.min_chunk = 512;
  params.max_chunk = 8192;
  const auto lengths = chunk_lengths(as_bytes(input), params);
  ASSERT_FALSE(lengths.empty());
  for (std::size_t i = 0; i + 1 < lengths.size(); ++i) {  // last may be short
    EXPECT_GE(lengths[i], params.min_chunk);
    EXPECT_LE(lengths[i], params.max_chunk);
  }
  EXPECT_LE(lengths.back(), params.max_chunk);
}

TEST(ChunkLengths, EmptyInputYieldsNoChunks) {
  EXPECT_TRUE(chunk_lengths({}).empty());
}

TEST(ChunkLengths, DeterministicAcrossCalls) {
  const std::string input = make_synthetic_input({.total_bytes = 100000});
  EXPECT_EQ(chunk_lengths(as_bytes(input)), chunk_lengths(as_bytes(input)));
}

TEST(ChunkLengths, IdenticalContentChunksIdentically) {
  // Content-defined chunking: a repeated segment must produce the same
  // splits in both occurrences (this is what makes dedup find duplicates
  // regardless of position).
  const std::string segment = make_synthetic_input(
      {.total_bytes = 120000, .dup_fraction = 0.0, .seed = 9});
  const std::string prefix_a = "";
  const std::string prefix_b = make_synthetic_input(
      {.total_bytes = 60000, .dup_fraction = 0.0, .seed = 10});

  ChunkParams params;
  const auto la = chunk_lengths(as_bytes(prefix_a + segment), params);
  const auto lb = chunk_lengths(as_bytes(prefix_b + segment), params);

  // Compare chunk sequences from the tail: the last chunks of the segment
  // must agree (alignment recovers after at most one chunk into the
  // segment thanks to boundary-restarted windows).
  ASSERT_GE(la.size(), 3u);
  ASSERT_GE(lb.size(), 3u);
  // Count identical trailing lengths.
  std::size_t match = 0;
  while (match < std::min(la.size(), lb.size()) &&
         la[la.size() - 1 - match] == lb[lb.size() - 1 - match]) {
    ++match;
  }
  EXPECT_GE(match, 2u) << "chunking did not resynchronize on shared content";
}

TEST(ChunkLengths, AverageChunkSizeNearTarget) {
  const std::string input = make_synthetic_input(
      {.total_bytes = 2 << 20, .dup_fraction = 0.0});
  ChunkParams params;  // mask 2^12-1, min 1024 -> expect avg ~ 5 KiB
  const auto lengths = chunk_lengths(as_bytes(input), params);
  ASSERT_FALSE(lengths.empty());
  const double avg = static_cast<double>(input.size()) /
                     static_cast<double>(lengths.size());
  EXPECT_GT(avg, 1024.0);
  EXPECT_LT(avg, 4.0 * 4096 + 1024);
}

}  // namespace
}  // namespace adtm::dedup
