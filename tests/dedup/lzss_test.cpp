// LZSS codec: round-trip properties over adversarial input shapes.
#include "dedup/lzss.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "common/rng.hpp"
#include "dedup/synth_input.hpp"

namespace adtm::dedup {
namespace {

TEST(Lzss, EmptyInput) {
  EXPECT_EQ(lzss_decompress_str(lzss_compress_str("")), "");
}

TEST(Lzss, SingleByte) {
  EXPECT_EQ(lzss_decompress_str(lzss_compress_str("x")), "x");
}

TEST(Lzss, ShortLiteralOnly) {
  const std::string s = "abcdefg";
  EXPECT_EQ(lzss_decompress_str(lzss_compress_str(s)), s);
}

TEST(Lzss, HighlyRepetitiveCompressesWell) {
  const std::string s(100000, 'a');
  const std::string c = lzss_compress_str(s);
  EXPECT_LT(c.size(), s.size() / 50);
  EXPECT_EQ(lzss_decompress_str(c), s);
}

TEST(Lzss, OverlappingMatchReplication) {
  // "abab..." forces matches with offset < length (RLE-style overlap).
  std::string s;
  for (int i = 0; i < 5000; ++i) s += "ab";
  EXPECT_EQ(lzss_decompress_str(lzss_compress_str(s)), s);
}

TEST(Lzss, TextLikeInputCompresses) {
  const std::string s = make_synthetic_input({.total_bytes = 200000});
  const std::string c = lzss_compress_str(s);
  EXPECT_LT(c.size(), s.size());  // real compression on text-like data
  EXPECT_EQ(lzss_decompress_str(c), s);
}

TEST(Lzss, IncompressibleRandomRoundTrips) {
  Xoshiro256 rng{11};
  std::string s(65536, '\0');
  for (auto& ch : s) ch = static_cast<char>(rng.next());
  const std::string c = lzss_compress_str(s);
  // Bounded expansion: flags add at most 1 byte per 8 literals + header.
  EXPECT_LT(c.size(), s.size() + s.size() / 8 + 16);
  EXPECT_EQ(lzss_decompress_str(c), s);
}

TEST(Lzss, MatchesAcrossWindowBoundary) {
  // Repetition spaced near the 64 KiB window limit.
  const std::string unit = make_synthetic_input(
      {.total_bytes = 60000, .dup_fraction = 0.0, .seed = 3});
  const std::string s = unit + unit + unit;
  EXPECT_EQ(lzss_decompress_str(lzss_compress_str(s)), s);
}

TEST(Lzss, BinaryWithEmbeddedNulsRoundTrips) {
  std::string s;
  for (int i = 0; i < 10000; ++i) {
    s.push_back(static_cast<char>(i % 7 == 0 ? 0 : i));
  }
  EXPECT_EQ(lzss_decompress_str(lzss_compress_str(s)), s);
}

TEST(LzssErrors, TruncatedHeaderThrows) {
  EXPECT_THROW(lzss_decompress_str("ab"), std::runtime_error);
}

TEST(LzssErrors, TruncatedBodyThrows) {
  std::string c = lzss_compress_str("hello hello hello hello");
  c.resize(c.size() - 3);
  EXPECT_THROW(lzss_decompress_str(c), std::runtime_error);
}

TEST(LzssErrors, CorruptOffsetThrows) {
  // Handcraft: raw size 4, one flag byte declaring a match, offset far
  // beyond anything written.
  std::string c;
  c += std::string("\x04\x00\x00\x00", 4);  // raw size 4
  c += static_cast<char>(0x01);             // first token is a match
  c += static_cast<char>(0xff);             // offset lo
  c += static_cast<char>(0xff);             // offset hi -> off=65536
  c += static_cast<char>(0x00);             // len = kMinMatch
  EXPECT_THROW(lzss_decompress_str(c), std::runtime_error);
}

// Property sweep: round trip across sizes and seeds.
class LzssRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(LzssRoundTrip, Holds) {
  const auto [size, seed] = GetParam();
  const std::string s = make_synthetic_input(
      {.total_bytes = size,
       .dup_fraction = 0.3,
       .block_bytes = 4096,
       .seed = static_cast<std::uint64_t>(seed)});
  EXPECT_EQ(lzss_decompress_str(lzss_compress_str(s)), s);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LzssRoundTrip,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{100},
                                         std::size_t{4096},
                                         std::size_t{65535},
                                         std::size_t{65536},
                                         std::size_t{65537},
                                         std::size_t{262144}),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace adtm::dedup
