#include "dedup/format.hpp"

#include <gtest/gtest.h>

#include <string>

#include "dedup/lzss.hpp"

namespace adtm::dedup {
namespace {

std::vector<std::byte> to_bytes(const std::string& s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return {p, p + s.size()};
}

std::string container_with(const std::vector<std::vector<std::byte>>& records) {
  std::string out(kMagic, sizeof(kMagic));
  for (const auto& r : records) {
    out.append(reinterpret_cast<const char*>(r.data()), r.size());
  }
  return out;
}

TEST(Format, UniqueRecordRestores) {
  const std::string chunk = "the quick brown fox";
  const auto digest = sha1(chunk);
  const auto comp = lzss_compress(to_bytes(chunk));
  const std::string container = container_with({encode_unique(digest, comp)});
  EXPECT_EQ(restore_str(container), chunk);
}

TEST(Format, RefRecordExpandsToEarlierChunk) {
  const std::string chunk = "repeated content block";
  const auto digest = sha1(chunk);
  const auto comp = lzss_compress(to_bytes(chunk));
  const std::string container = container_with(
      {encode_unique(digest, comp), encode_ref(digest), encode_ref(digest)});
  EXPECT_EQ(restore_str(container), chunk + chunk + chunk);
}

TEST(Format, EmptyContainerRestoresEmpty) {
  EXPECT_EQ(restore_str(std::string(kMagic, sizeof(kMagic))), "");
}

TEST(FormatErrors, BadMagicThrows) {
  EXPECT_THROW(restore_str("NOTMAGIC"), std::runtime_error);
  EXPECT_THROW(restore_str(""), std::runtime_error);
}

TEST(FormatErrors, RefToUnseenChunkThrows) {
  const std::string container =
      container_with({encode_ref(sha1(std::string{"x"}))});
  EXPECT_THROW(restore_str(container), std::runtime_error);
}

TEST(FormatErrors, TruncatedRecordThrows) {
  const std::string chunk = "data";
  const auto comp = lzss_compress(to_bytes(chunk));
  std::string container = container_with({encode_unique(sha1(chunk), comp)});
  container.resize(container.size() - 2);
  EXPECT_THROW(restore_str(container), std::runtime_error);
}

TEST(FormatErrors, DigestMismatchThrows) {
  const std::string chunk = "data";
  const auto comp = lzss_compress(to_bytes(chunk));
  // Lie about the digest.
  const std::string container =
      container_with({encode_unique(sha1(std::string{"other"}), comp)});
  EXPECT_THROW(restore_str(container), std::runtime_error);
}

TEST(FormatErrors, UnknownRecordTypeThrows) {
  std::string container(kMagic, sizeof(kMagic));
  container.push_back(static_cast<char>(0x7f));
  EXPECT_THROW(restore_str(container), std::runtime_error);
}

}  // namespace
}  // namespace adtm::dedup
