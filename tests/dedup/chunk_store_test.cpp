// ChunkStore semantics across all sync modes x TM algorithms.
#include "dedup/chunk_store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "dedup/sha1.hpp"
#include "stm/api.hpp"
#include "support/algo_param.hpp"

namespace adtm::dedup {
namespace {

Sha1Digest digest_of(int n) { return sha1(std::to_string(n)); }

std::vector<std::byte> payload_of(int n) {
  const std::string s = "payload-" + std::to_string(n);
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return {p, p + s.size()};
}

class ChunkStoreTest
    : public ::testing::TestWithParam<std::tuple<SyncMode, std::string>> {
 protected:
  void SetUp() override {
    stm::Config cfg;
    cfg.backend = std::get<1>(GetParam());
    stm::init(cfg);
    mode_ = std::get<0>(GetParam());
  }
  SyncMode mode_{};
};

TEST_P(ChunkStoreTest, FirstInsertWins) {
  ChunkStore store(mode_);
  const auto r1 = store.lookup_or_insert(digest_of(1));
  EXPECT_TRUE(r1.inserted);
  const auto r2 = store.lookup_or_insert(digest_of(1));
  EXPECT_FALSE(r2.inserted);
  EXPECT_EQ(r1.entry, r2.entry);
  EXPECT_EQ(store.entry_count(), 1u);
}

TEST_P(ChunkStoreTest, DistinctDigestsGetDistinctEntries) {
  ChunkStore store(mode_);
  const auto a = store.lookup_or_insert(digest_of(1));
  const auto b = store.lookup_or_insert(digest_of(2));
  EXPECT_TRUE(a.inserted);
  EXPECT_TRUE(b.inserted);
  EXPECT_NE(a.entry, b.entry);
  EXPECT_EQ(store.entry_count(), 2u);
}

TEST_P(ChunkStoreTest, ClaimWriteReturnsTrueExactlyOnce) {
  ChunkStore store(mode_);
  const auto r = store.lookup_or_insert(digest_of(7));
  store.publish_compressed(*r.entry, payload_of(7));
  EXPECT_TRUE(store.claim_write(*r.entry));
  EXPECT_FALSE(store.claim_write(*r.entry));
  EXPECT_FALSE(store.claim_write(*r.entry));
}

TEST_P(ChunkStoreTest, ClaimWaitsForPublication) {
  ChunkStore store(mode_);
  const auto r = store.lookup_or_insert(digest_of(3));
  std::atomic<bool> claimed{false};
  std::thread claimer([&] {
    EXPECT_TRUE(store.claim_write(*r.entry));
    claimed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(claimed.load());
  store.publish_compressed(*r.entry, payload_of(3));
  claimer.join();
  EXPECT_TRUE(claimed.load());
  EXPECT_EQ(r.entry->compressed(), payload_of(3));
}

TEST_P(ChunkStoreTest, ConcurrentInsertersAgreeOnOneEntry) {
  ChunkStore store(mode_);
  constexpr int kThreads = 4;
  constexpr int kDigests = 40;
  std::atomic<int> insert_counts[kDigests] = {};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng{static_cast<std::uint64_t>(t) * 99 + 1};
      for (int i = 0; i < 300; ++i) {
        const int d = static_cast<int>(rng.next_below(kDigests));
        const auto r = store.lookup_or_insert(digest_of(d));
        if (r.inserted) {
          insert_counts[d].fetch_add(1);
          store.publish_compressed(*r.entry, payload_of(d));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int d = 0; d < kDigests; ++d) {
    EXPECT_LE(insert_counts[d].load(), 1) << "digest " << d;
  }
  EXPECT_EQ(store.entry_count(),
            static_cast<std::uint64_t>(
                std::count_if(std::begin(insert_counts),
                              std::end(insert_counts),
                              [](auto& c) { return c.load() == 1; })));
}

TEST_P(ChunkStoreTest, ConcurrentClaimersOnlyOneWins) {
  ChunkStore store(mode_);
  constexpr int kRounds = 30;
  for (int round = 0; round < kRounds; ++round) {
    const auto r = store.lookup_or_insert(digest_of(round + 1000));
    store.publish_compressed(*r.entry, payload_of(round));
    std::atomic<int> wins{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        if (store.claim_write(*r.entry)) wins.fetch_add(1);
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(wins.load(), 1);
  }
}

TEST_P(ChunkStoreTest, BucketCollisionsChainCorrectly) {
  // A store with a single bucket forces every digest into one chain.
  ChunkStore store(mode_, /*buckets=*/1);
  std::set<const ChunkStore::Entry*> entries;
  for (int i = 0; i < 50; ++i) {
    const auto r = store.lookup_or_insert(digest_of(i));
    EXPECT_TRUE(r.inserted);
    entries.insert(r.entry);
  }
  EXPECT_EQ(entries.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    const auto r = store.lookup_or_insert(digest_of(i));
    EXPECT_FALSE(r.inserted);
    EXPECT_TRUE(entries.count(r.entry));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ChunkStoreTest,
    ::testing::Values(
        std::tuple{SyncMode::Pthread, std::string("TL2")},
        std::tuple{SyncMode::TmIrrevoc, std::string("TL2")},
        std::tuple{SyncMode::TmIrrevoc, std::string("Eager")},
        std::tuple{SyncMode::TmIrrevoc, std::string("HTMSim")},
        std::tuple{SyncMode::TmDeferIO, std::string("TL2")},
        std::tuple{SyncMode::TmDeferAll, std::string("TL2")},
        std::tuple{SyncMode::TmDeferAll, std::string("HTMSim")},
        std::tuple{SyncMode::TmIrrevoc, std::string("NOrec")},
        std::tuple{SyncMode::TmDeferAll, std::string("NOrec")}),
    [](const auto& info) {
      std::string name = std::string(sync_mode_name(std::get<0>(info.param))) +
                         "_" + std::get<1>(info.param);
      std::erase_if(name, [](char c) {
        return !std::isalnum(static_cast<unsigned char>(c)) && c != '_';
      });
      return name;
    });

}  // namespace
}  // namespace adtm::dedup
