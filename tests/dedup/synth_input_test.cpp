#include "dedup/synth_input.hpp"

#include <gtest/gtest.h>

namespace adtm::dedup {
namespace {

TEST(SynthInput, ExactRequestedSize) {
  for (std::size_t size : {0u, 1u, 1000u, 1u << 20}) {
    EXPECT_EQ(make_synthetic_input({.total_bytes = size}).size(), size);
  }
}

TEST(SynthInput, DeterministicForSeed) {
  const SynthParams p{.total_bytes = 100000, .seed = 5};
  EXPECT_EQ(make_synthetic_input(p), make_synthetic_input(p));
}

TEST(SynthInput, DifferentSeedsDiffer) {
  EXPECT_NE(make_synthetic_input({.total_bytes = 10000, .seed = 1}),
            make_synthetic_input({.total_bytes = 10000, .seed = 2}));
}

TEST(SynthInput, DupFractionZeroHasNoRepeatedBlocks) {
  const std::string s = make_synthetic_input(
      {.total_bytes = 200000, .dup_fraction = 0.0, .block_bytes = 8192});
  // Compare all block pairs: none identical.
  const std::size_t blocks = s.size() / 8192;
  for (std::size_t i = 0; i < blocks; ++i) {
    for (std::size_t j = i + 1; j < blocks; ++j) {
      EXPECT_NE(s.substr(i * 8192, 8192), s.substr(j * 8192, 8192));
    }
  }
}

TEST(SynthInput, HighDupFractionRepeatsBlocks) {
  const std::string s = make_synthetic_input(
      {.total_bytes = 400000, .dup_fraction = 0.8, .block_bytes = 8192});
  const std::size_t blocks = s.size() / 8192;
  int repeats = 0;
  for (std::size_t i = 0; i < blocks; ++i) {
    for (std::size_t j = i + 1; j < blocks; ++j) {
      repeats += (s.compare(i * 8192, 8192, s, j * 8192, 8192) == 0);
    }
  }
  EXPECT_GT(repeats, 0);
}

}  // namespace
}  // namespace adtm::dedup
