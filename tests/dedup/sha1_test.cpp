// SHA-1 against the FIPS 180-1 / NIST test vectors.
#include "dedup/sha1.hpp"

#include <gtest/gtest.h>

#include <string>

namespace adtm::dedup {
namespace {

TEST(Sha1, EmptyString) {
  EXPECT_EQ(sha1(std::string{}).hex(),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(sha1(std::string{"abc"}).hex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, NistTwoBlockMessage) {
  EXPECT_EQ(
      sha1(std::string{
               "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"})
          .hex(),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  const std::string input(1000000, 'a');
  EXPECT_EQ(sha1(input).hex(), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, QuickBrownFox) {
  EXPECT_EQ(sha1(std::string{"The quick brown fox jumps over the lazy dog"})
                .hex(),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  const std::string data(12345, 'x');
  Sha1 h;
  // Feed in awkward pieces crossing block boundaries.
  std::size_t i = 0;
  std::size_t step = 1;
  while (i < data.size()) {
    const std::size_t take = std::min(step, data.size() - i);
    h.update(data.data() + i, take);
    i += take;
    step = (step * 7 + 3) % 200 + 1;
  }
  EXPECT_EQ(h.finish().hex(), sha1(data).hex());
}

TEST(Sha1, ResetAllowsReuse) {
  Sha1 h;
  h.update("garbage", 7);
  h.reset();
  h.update("abc", 3);
  EXPECT_EQ(h.finish().hex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, DistinctInputsDistinctDigests) {
  EXPECT_NE(sha1(std::string{"aaaa"}), sha1(std::string{"aaab"}));
}

TEST(Sha1, Prefix64BigEndianOfFirstBytes) {
  const Sha1Digest d = sha1(std::string{"abc"});
  // a9993e364706816a as an integer.
  EXPECT_EQ(d.prefix64(), 0xa9993e364706816aULL);
}

TEST(Sha1, LengthBoundaryCases) {
  // Messages around the 55/56/64 padding boundaries.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 128u}) {
    const std::string data(len, 'q');
    Sha1 h;
    h.update(data.data(), len);
    EXPECT_EQ(h.finish(), sha1(data)) << "len=" << len;
  }
}

}  // namespace
}  // namespace adtm::dedup
