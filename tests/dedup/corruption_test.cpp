// Corruption robustness: restore() and lzss_decompress() must never crash,
// hang, or silently return wrong data when fed damaged input — they either
// throw or (for damage past the read point) succeed with verified content.
// Randomized sweeps over byte flips and truncations of valid containers.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "common/rng.hpp"
#include "dedup/format.hpp"
#include "dedup/lzss.hpp"
#include "dedup/pipeline.hpp"
#include "dedup/synth_input.hpp"
#include "io/posix_file.hpp"
#include "io/temp_dir.hpp"
#include "stm/api.hpp"

namespace adtm::dedup {
namespace {

std::string make_container(std::uint64_t seed) {
  stm::init({.backend = "tl2"});
  const std::string input = make_synthetic_input(
      {.total_bytes = 96 * 1024, .dup_fraction = 0.5, .seed = seed});
  io::TempDir dir("adtm-corrupt");
  Options opts;
  opts.mode = SyncMode::Pthread;
  opts.workers = 2;
  dedup_stream(input, dir.file("c.dd"), opts);
  return io::read_file(dir.file("c.dd"));
}

class ContainerCorruption : public ::testing::TestWithParam<int> {};

TEST_P(ContainerCorruption, ByteFlipsNeverCrashOrCorruptSilently) {
  const std::string clean = make_container(100 + GetParam());
  const std::string expected = restore_str(clean);
  Xoshiro256 rng{static_cast<std::uint64_t>(GetParam()) * 31 + 7};

  for (int trial = 0; trial < 60; ++trial) {
    std::string damaged = clean;
    // Flip 1-4 random bytes.
    const int flips = 1 + static_cast<int>(rng.next_below(4));
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos = rng.next_below(damaged.size());
      damaged[pos] = static_cast<char>(
          damaged[pos] ^ static_cast<char>(1 + rng.next_below(255)));
    }
    try {
      const std::string out = restore_str(damaged);
      // Accepted: then the flip must have been semantically neutral... but
      // every payload byte is covered by SHA-1 and every structural field
      // changes parsing, so acceptance requires identical output.
      EXPECT_EQ(out, expected) << "silent corruption, trial " << trial;
    } catch (const std::exception&) {
      // Detected: the expected outcome.
    }
  }
}

TEST_P(ContainerCorruption, TruncationsNeverCrash) {
  const std::string clean = make_container(200 + GetParam());
  Xoshiro256 rng{static_cast<std::uint64_t>(GetParam()) * 17 + 3};
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t keep = rng.next_below(clean.size());
    const std::string damaged = clean.substr(0, keep);
    try {
      const std::string out = restore_str(damaged);
      // A truncation exactly at a record boundary restores a prefix.
      EXPECT_TRUE(restore_str(clean).rfind(out, 0) == 0)
          << "not a prefix, trial " << trial;
    } catch (const std::exception&) {
      // Detected truncation: fine.
    }
  }
}

TEST_P(ContainerCorruption, LzssDecompressSurvivesGarbage) {
  Xoshiro256 rng{static_cast<std::uint64_t>(GetParam()) + 99};
  for (int trial = 0; trial < 100; ++trial) {
    std::string garbage(rng.next_below(4096), '\0');
    for (auto& c : garbage) c = static_cast<char>(rng.next());
    try {
      const std::string out = lzss_decompress_str(garbage);
      // Bounded: the header caps output size at the declared raw length.
      EXPECT_LE(out.size(), std::size_t{1} << 32);
    } catch (const std::exception&) {
      // Malformed input detected.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContainerCorruption, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace adtm::dedup
