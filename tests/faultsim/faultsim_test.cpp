// Unit tests for the fault-injection engine itself: plan matching,
// skip/count scheduling, fd filtering, seeded-random determinism, and the
// PosixFile hook (short writes, EINTR on read, crash points).
#include "faultsim/faultsim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <string>
#include <system_error>
#include <vector>

#include "common/stats.hpp"
#include "io/posix_file.hpp"
#include "io/temp_dir.hpp"

namespace adtm::faultsim {
namespace {

class FaultSimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine().disarm();
    stats().reset();
  }
  void TearDown() override { engine().disarm(); }

  io::TempDir dir_{"adtm-faultsim"};
};

TEST_F(FaultSimTest, InactiveByDefault) {
  EXPECT_FALSE(active());
  // Plain I/O is untouched.
  io::write_file(dir_.file("a"), std::string("hello"));
  EXPECT_EQ(io::read_file(dir_.file("a")), "hello");
  EXPECT_EQ(engine().injected_total(), 0u);
}

TEST_F(FaultSimTest, DisarmDeactivates) {
  engine().arm({.op = Op::Write, .fault = Fault::error(EIO)});
  EXPECT_TRUE(active());
  engine().disarm();
  EXPECT_FALSE(active());
}

TEST_F(FaultSimTest, PlanSkipsThenFiresThenExhausts) {
  engine().arm({.op = Op::Write,
                .fault = Fault::error(EINTR),
                .skip = 2,
                .count = 3});
  // Calls 1-2 pass, 3-5 fire, 6+ pass again.
  std::vector<bool> fired;
  for (int i = 0; i < 7; ++i) {
    fired.push_back(engine().on_syscall(Op::Write, 5).kind != FaultKind::None);
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, true, false,
                                      false}));
  EXPECT_EQ(engine().injected(Op::Write), 3u);
  EXPECT_EQ(engine().calls(Op::Write), 7u);
  EXPECT_EQ(stats().total(Counter::FaultsInjected), 3u);
}

TEST_F(FaultSimTest, PlanRestrictedToOneDescriptor) {
  engine().arm({.op = Op::Fsync, .fault = Fault::error(EIO), .fd = 42});
  EXPECT_EQ(engine().on_syscall(Op::Fsync, 7).kind, FaultKind::None);
  EXPECT_EQ(engine().on_syscall(Op::Fsync, 42).kind, FaultKind::Errno);
  // count defaulted to 1: exhausted now.
  EXPECT_EQ(engine().on_syscall(Op::Fsync, 42).kind, FaultKind::None);
}

TEST_F(FaultSimTest, PlansDoNotCrossOps) {
  engine().arm({.op = Op::Fsync, .fault = Fault::error(EIO), .count = 0});
  EXPECT_EQ(engine().on_syscall(Op::Write, 3).kind, FaultKind::None);
  EXPECT_EQ(engine().on_syscall(Op::Read, 3).kind, FaultKind::None);
  EXPECT_EQ(engine().on_syscall(Op::Fsync, 3).kind, FaultKind::Errno);
}

TEST_F(FaultSimTest, RandomInjectionIsDeterministicPerSeed) {
  auto pattern = [&](std::uint64_t seed) {
    engine().disarm();
    engine().arm_random(Op::Write, 0.3, Fault::error(EINTR), seed);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(engine().on_syscall(Op::Write, 1).kind !=
                      FaultKind::None);
    }
    return fired;
  };
  const auto a = pattern(1234);
  const auto b = pattern(1234);
  const auto c = pattern(5678);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // astronomically unlikely to collide over 200 draws
  // ~30% of 200 calls should fire; allow a generous band.
  const auto fires = static_cast<int>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 20);
  EXPECT_LT(fires, 120);
}

TEST_F(FaultSimTest, ShortWritesAreTransparentlyRecovered) {
  // Every write is capped at 3 bytes: write_fully must still land all
  // bytes, byte-exactly, via its partial-write loop.
  engine().arm({.op = Op::Write,
                .fault = Fault::short_write(3),
                .count = 0});
  std::string payload;
  for (int i = 0; i < 100; ++i) payload += static_cast<char>('a' + i % 26);
  io::write_file(dir_.file("short"), payload);
  engine().disarm();
  EXPECT_EQ(io::read_file(dir_.file("short")), payload);
  EXPECT_GE(stats().total(Counter::FaultsInjected), 100u / 3);
}

TEST_F(FaultSimTest, ReadPathsRetryInjectedEintr) {
  io::write_file(dir_.file("r"), std::string("0123456789"));

  // read_some retries EINTR (same contract as the write paths).
  {
    io::PosixFile f = io::PosixFile::open_read(dir_.file("r"));
    engine().arm({.op = Op::Read, .fault = Fault::error(EINTR), .count = 4});
    char buf[16];
    const std::size_t n = f.read_some(buf, sizeof(buf));
    EXPECT_EQ(std::string(buf, n), "0123456789");
    engine().disarm();
  }

  // pread_some likewise.
  {
    io::PosixFile f = io::PosixFile::open_read(dir_.file("r"));
    engine().arm({.op = Op::Pread, .fault = Fault::error(EINTR), .count = 4});
    char buf[4];
    const std::size_t n = f.pread_some(buf, sizeof(buf), 2);
    EXPECT_EQ(std::string(buf, n), "2345");
  }
}

TEST_F(FaultSimTest, PermanentReadErrorSurfaces) {
  io::write_file(dir_.file("bad"), std::string("data"));
  io::PosixFile f = io::PosixFile::open_read(dir_.file("bad"));
  engine().arm({.op = Op::Read, .fault = Fault::error(EIO), .count = 0});
  char buf[4];
  try {
    f.read_some(buf, sizeof(buf));
    FAIL() << "expected std::system_error";
  } catch (const std::system_error& e) {
    EXPECT_EQ(e.code().value(), EIO);
  }
}

TEST_F(FaultSimTest, CrashPointTearsTheTail) {
  io::PosixFile f = io::PosixFile::create(dir_.file("torn"));
  engine().arm({.op = Op::Write, .fault = Fault::crash(4)});
  EXPECT_THROW(f.write_fully("0123456789", 10), SimulatedCrash);
  engine().disarm();
  // Exactly the crash plan's prefix persisted: a torn tail.
  EXPECT_EQ(io::read_file(dir_.file("torn")), "0123");
}

TEST_F(FaultSimTest, FaultScopeDisarmsOnExit) {
  {
    FaultScope scope({.op = Op::Write, .fault = Fault::error(EIO),
                      .count = 0});
    EXPECT_TRUE(active());
  }
  EXPECT_FALSE(active());
  io::write_file(dir_.file("ok"), std::string("fine"));
  EXPECT_EQ(io::read_file(dir_.file("ok")), "fine");
}

}  // namespace
}  // namespace adtm::faultsim
