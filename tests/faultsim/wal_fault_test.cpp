// Fault injection against the WAL's deferred group commit: transient
// faults (short write, EINTR, ENOSPC) are retried and recovered with no
// data loss; permanent faults (fsync EIO, exhausted retry budgets, crash
// points) poison the log, which then fails fast — append/flush/
// wait_durable raise, blocked subscribers wake, nothing hangs — and a
// reopen recovers the valid prefix.
#include <gtest/gtest.h>

#include <cerrno>
#include <stdexcept>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "faultsim/faultsim.hpp"
#include "io/temp_dir.hpp"
#include "stm/api.hpp"
#include "wal/wal.hpp"

namespace adtm::wal {
namespace {

class WalFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stm::init({.backend = "tl2"});
    faultsim::engine().disarm();
    stats().reset();
  }
  void TearDown() override { faultsim::engine().disarm(); }

  io::TempDir dir_{"adtm-walfault"};
};

TEST_F(WalFaultTest, ShortWritesLoseNoData) {
  const std::string path = dir_.file("wal.log");
  {
    WriteAheadLog log(path);
    // Every write capped at 5 bytes, forever: group commit degrades to
    // many small writes but must stay byte-exact.
    faultsim::engine().arm({.op = faultsim::Op::Write,
                            .fault = faultsim::Fault::short_write(5),
                            .count = 0});
    for (int i = 0; i < 20; ++i) {
      log.append("record-" + std::to_string(i) + std::string(40, 'x'));
    }
    log.flush();
    EXPECT_FALSE(log.failed());
    EXPECT_GT(faultsim::engine().injected(faultsim::Op::Write), 0u);
  }
  faultsim::engine().disarm();
  const auto r = WriteAheadLog::recover(path);
  EXPECT_TRUE(r.clean);
  ASSERT_EQ(r.records.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(r.records[static_cast<std::size_t>(i)],
              "record-" + std::to_string(i) + std::string(40, 'x'));
  }
}

TEST_F(WalFaultTest, TransientEintrOnWriteIsRetried) {
  const std::string path = dir_.file("wal.log");
  WriteAheadLog log(path);
  faultsim::engine().arm({.op = faultsim::Op::Write,
                          .fault = faultsim::Fault::error(EINTR),
                          .count = 6});
  log.append("survives-eintr");
  log.flush();
  EXPECT_FALSE(log.failed());
  EXPECT_EQ(log.durable_lsn_direct(), 1u);
  EXPECT_EQ(faultsim::engine().injected(faultsim::Op::Write), 6u);
  faultsim::engine().disarm();
  const auto r = WriteAheadLog::recover(path);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0], "survives-eintr");
}

TEST_F(WalFaultTest, TransientEnospcIsRetriedWithinBudget) {
  const std::string path = dir_.file("wal.log");
  WriteAheadLog log(path);
  // Three ENOSPC failures, then space "frees up": the bounded-retry
  // policy (default budget 8) must absorb them.
  faultsim::engine().arm({.op = faultsim::Op::Write,
                          .fault = faultsim::Fault::error(ENOSPC),
                          .count = 3});
  log.append("survives-enospc");
  log.flush();
  EXPECT_FALSE(log.failed());
  EXPECT_GE(stats().total(Counter::FailureRetries), 3u);
  faultsim::engine().disarm();
  const auto r = WriteAheadLog::recover(path);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0], "survives-enospc");
}

TEST_F(WalFaultTest, PermanentFsyncFailurePoisonsTheLog) {
  const std::string path = dir_.file("wal.log");
  WriteAheadLog log(path);
  log.append("healthy");
  log.flush();

  faultsim::engine().arm({.op = faultsim::Op::Fsync,
                          .fault = faultsim::Fault::error(EIO),
                          .count = 0});
  // The deferred group commit fails permanently; the failure surfaces on
  // the committing thread, after commit, as the paper's model dictates.
  EXPECT_THROW(log.append("doomed"), std::system_error);
  EXPECT_TRUE(log.failed());
  EXPECT_NE(log.failure_reason(), "");
  EXPECT_GE(stats().total(Counter::FailureEscalations), 1u);

  // Terminal state: every entry point raises cleanly, nothing hangs.
  EXPECT_THROW(log.append("after-poison"), std::runtime_error);
  EXPECT_THROW(log.flush(), std::runtime_error);
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) { log.wait_durable(tx, 2); }),
               std::runtime_error);

  // Recovery path: reopen on the same file. The "doomed" record's bytes
  // reached the file (only its fsync failed), so recovery may legally
  // resurrect it — a WAL promises at-least the acknowledged prefix.
  faultsim::engine().disarm();
  WriteAheadLog reopened(path);
  EXPECT_FALSE(reopened.failed());
  EXPECT_EQ(reopened.durable_lsn_direct(), 2u);
  reopened.append("after-recovery");
  reopened.flush();
  const auto r = WriteAheadLog::recover(path);
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.records[0], "healthy");
  EXPECT_EQ(r.records[1], "doomed");
  EXPECT_EQ(r.records[2], "after-recovery");
}

TEST_F(WalFaultTest, ExhaustedRetryBudgetPoisonsInsteadOfHanging) {
  const std::string path = dir_.file("wal.log");
  WriteAheadLog log(path);
  log.set_failure_policy({.max_retries = 2,
                          .backoff_min_spins = 4,
                          .backoff_max_spins = 64,
                          .retryable = nullptr,
                          .escalate = nullptr});
  faultsim::engine().arm({.op = faultsim::Op::Write,
                          .fault = faultsim::Fault::error(ENOSPC),
                          .count = 0});  // the disk never recovers
  EXPECT_THROW(log.append("never-lands"), std::system_error);
  EXPECT_TRUE(log.failed());
  EXPECT_EQ(stats().total(Counter::FailureRetries), 2u);
  EXPECT_GE(stats().total(Counter::FailureEscalations), 1u);
}

TEST_F(WalFaultTest, PoisoningWakesBlockedSubscribers) {
  const std::string path = dir_.file("wal.log");
  WriteAheadLog log(path);

  std::atomic<bool> waiter_raised{false};
  std::atomic<bool> waiter_started{false};
  std::thread waiter([&] {
    try {
      waiter_started.store(true);
      stm::atomic([&](stm::Tx& tx) { log.wait_durable(tx, 1); });
    } catch (const std::runtime_error&) {
      waiter_raised.store(true);
    }
  });
  while (!waiter_started.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  faultsim::engine().arm({.op = faultsim::Op::Fsync,
                          .fault = faultsim::Fault::error(EIO),
                          .count = 0});
  EXPECT_THROW(log.append("doomed"), std::system_error);
  // The waiter must wake via the transactional failed_ flag and raise —
  // a hang here would time the whole suite out.
  waiter.join();
  EXPECT_TRUE(waiter_raised.load());
}

TEST_F(WalFaultTest, CrashPointMidGroupCommitIsRecoverable) {
  const std::string path = dir_.file("wal.log");
  {
    WriteAheadLog log(path);
    log.append("before-crash-1");
    log.append("before-crash-2");
    log.flush();

    // Crash 10 bytes into the next group-commit write: the batch of
    // three records tears mid-record.
    faultsim::engine().arm({.op = faultsim::Op::Write,
                            .fault = faultsim::Fault::crash(10)});
    EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                   log.append(tx, "lost-a" + std::string(30, 'a'));
                   log.append(tx, "lost-b" + std::string(30, 'b'));
                   log.append(tx, "lost-c" + std::string(30, 'c'));
                 }),
                 faultsim::SimulatedCrash);
    EXPECT_TRUE(log.failed());
    // In-memory state is abandoned here, as in a real crash: the log
    // object is poisoned and dropped.
  }
  faultsim::engine().disarm();

  const auto r = WriteAheadLog::recover(path);
  EXPECT_FALSE(r.clean);  // torn tail detected
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.records[0], "before-crash-1");
  EXPECT_EQ(r.records[1], "before-crash-2");

  // Reopen truncates the tear and the log is fully usable again.
  WriteAheadLog reopened(path);
  EXPECT_EQ(reopened.durable_lsn_direct(), 2u);
  reopened.append("after-reopen");
  reopened.flush();
  const auto again = WriteAheadLog::recover(path);
  EXPECT_TRUE(again.clean);
  ASSERT_EQ(again.records.size(), 3u);
  EXPECT_EQ(again.records[2], "after-reopen");
}

}  // namespace
}  // namespace adtm::wal
