// Fault injection against DurableFile/DurableBuffer (paper §5.2): the
// deferred write+fsync retries transient faults, and a permanent failure
// poisons the buffer — subscribers fail fast, the implicit TxLocks are
// released, and the file object remains usable for other buffers.
#include <gtest/gtest.h>

#include <cerrno>
#include <stdexcept>
#include <string>
#include <system_error>

#include "common/stats.hpp"
#include "durable/durable.hpp"
#include "faultsim/faultsim.hpp"
#include "io/temp_dir.hpp"
#include "stm/api.hpp"

namespace adtm::durable {
namespace {

class DurableFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stm::init({.backend = "tl2"});
    faultsim::engine().disarm();
    stats().reset();
  }
  void TearDown() override { faultsim::engine().disarm(); }

  io::TempDir dir_{"adtm-durafault"};
};

TEST_F(DurableFaultTest, TransientFaultsRetriedAndDurable) {
  DurableFile f(dir_.file("f"));
  DurableBuffer buf("transient-payload");
  faultsim::engine().arm({.op = faultsim::Op::Write,
                          .fault = faultsim::Fault::error(ENOSPC),
                          .count = 2});
  stm::atomic([&](stm::Tx& tx) { durable_write(tx, f, buf); });
  // The deferred op ran on commit, absorbed both faults, and the flag is
  // set — with no byte duplicated by the retries.
  stm::atomic([&](stm::Tx& tx) { EXPECT_TRUE(is_durable(tx, buf)); });
  EXPECT_GE(stats().total(Counter::FailureRetries), 2u);
  faultsim::engine().disarm();
  EXPECT_EQ(io::read_file(dir_.file("f")), "transient-payload");
}

TEST_F(DurableFaultTest, ShortWritesDoNotDuplicateBytes) {
  DurableFile f(dir_.file("s"));
  DurableBuffer buf(std::string(64, 'q'));
  faultsim::engine().arm({.op = faultsim::Op::Write,
                          .fault = faultsim::Fault::short_write(7),
                          .count = 0});
  stm::atomic([&](stm::Tx& tx) { durable_write(tx, f, buf); });
  faultsim::engine().disarm();
  EXPECT_EQ(io::read_file(dir_.file("s")), std::string(64, 'q'));
}

TEST_F(DurableFaultTest, PermanentFsyncFailurePoisonsBuffer) {
  DurableFile f(dir_.file("p"));
  DurableBuffer doomed("doomed");
  faultsim::engine().arm({.op = faultsim::Op::Fsync,
                          .fault = faultsim::Fault::error(EIO),
                          .count = 0});
  // The failure surfaces post-commit on the committing thread.
  EXPECT_THROW(
      stm::atomic([&](stm::Tx& tx) { durable_write(tx, f, doomed); }),
      std::system_error);
  EXPECT_TRUE(doomed.failed_direct());
  EXPECT_GE(stats().total(Counter::FailureEscalations), 1u);

  // Fail fast, no hang: wait_durable raises instead of retrying forever.
  EXPECT_THROW(
      stm::atomic([&](stm::Tx& tx) { wait_durable(tx, doomed); }),
      std::runtime_error);

  // The implicit TxLocks were released on the failure path: the same
  // file accepts a new buffer once the fault clears.
  faultsim::engine().disarm();
  EXPECT_TRUE(f.txlock().try_acquire());
  f.txlock().release();
  DurableBuffer healthy("healthy");
  stm::atomic([&](stm::Tx& tx) { durable_write(tx, f, healthy); });
  stm::atomic([&](stm::Tx& tx) { EXPECT_TRUE(is_durable(tx, healthy)); });
}

TEST_F(DurableFaultTest, CrashPointTearsFileAndPoisonsBuffer) {
  DurableFile f(dir_.file("c"));
  DurableBuffer buf("0123456789");
  faultsim::engine().arm({.op = faultsim::Op::Write,
                          .fault = faultsim::Fault::crash(4)});
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) { durable_write(tx, f, buf); }),
               faultsim::SimulatedCrash);
  faultsim::engine().disarm();
  EXPECT_TRUE(buf.failed_direct());
  // Only the crash plan's prefix persisted — a torn tail, never a
  // silently complete record.
  EXPECT_EQ(io::read_file(dir_.file("c")), "0123");
  // A crash is never classified transient: no retry was attempted.
  EXPECT_EQ(stats().total(Counter::FailureRetries), 0u);
}

TEST_F(DurableFaultTest, CustomEscalationHandlerSuppressesThrow) {
  DurableFile f(dir_.file("h"));
  DurableBuffer buf("handled");
  faultsim::engine().arm({.op = faultsim::Op::Fsync,
                          .fault = faultsim::Fault::error(EIO),
                          .count = 0});
  int escalations = 0;
  FailurePolicy policy{.max_retries = 0,
                       .backoff_min_spins = 4,
                       .backoff_max_spins = 64,
                       .retryable = nullptr,
                       .escalate = [&](std::exception_ptr) { ++escalations; }};
  // The handler absorbs the failure: commit completes without a throw,
  // and because run_with_policy returned normally the buffer is marked
  // durable-path-complete by the deferred op's normal exit.
  stm::atomic([&](stm::Tx& tx) { durable_write(tx, f, buf, policy); });
  EXPECT_EQ(escalations, 1);
  EXPECT_FALSE(buf.failed_direct());
}

}  // namespace
}  // namespace adtm::durable
