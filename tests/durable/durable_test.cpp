// Durable ordered output (paper §5.2, Listing 4): F2 must not be written
// until F1's update has reached the disk.
#include "durable/durable.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "io/temp_dir.hpp"
#include "support/algo_param.hpp"

namespace adtm::durable {
namespace {

using test::AlgoTest;

class DurableTest : public AlgoTest {
 protected:
  io::TempDir dir_{"adtm-durable"};
};

TEST_P(DurableTest, WriteBecomesDurableAfterCommit) {
  DurableFile f(dir_.file("f1"));
  DurableBuffer buf("payload-1");
  stm::atomic([&](stm::Tx& tx) {
    durable_write(tx, f, buf);
    // Inside the transaction the deferred fsync has not run.
    EXPECT_FALSE(stm::in_transaction() && false);
  });
  // After atomic() returns, the deferred op (write+fsync+flag) completed.
  stm::atomic([&](stm::Tx& tx) { EXPECT_TRUE(is_durable(tx, buf)); });
  EXPECT_EQ(io::read_file(dir_.file("f1")), "payload-1");
}

TEST_P(DurableTest, FlagNotSetBeforeWrite) {
  DurableFile f(dir_.file("f1"));
  DurableBuffer buf("data");
  stm::atomic([&](stm::Tx& tx) { EXPECT_FALSE(is_durable(tx, buf)); });
}

TEST_P(DurableTest, ConditionalSecondWriteObservesFirst) {
  // Listing 4's exact protocol: T2 writes buf2 to f2 only if buf1 is
  // durable. Run T1 and T2 concurrently many times; whenever f2 was
  // written, f1 must contain its payload (ordering).
  constexpr int kRounds = 40;
  for (int round = 0; round < kRounds; ++round) {
    io::TempDir dir{"adtm-durable-round"};
    DurableFile f1(dir.file("f1")), f2(dir.file("f2"));
    DurableBuffer buf1("first-" + std::to_string(round));
    DurableBuffer buf2("second-" + std::to_string(round));

    std::thread t1([&] {
      stm::atomic([&](stm::Tx& tx) { durable_write(tx, f1, buf1); });
    });
    bool wrote_second = false;
    std::thread t2([&] {
      stm::atomic([&](stm::Tx& tx) {
        if (is_durable(tx, buf1)) {
          durable_write(tx, f2, buf2);
          wrote_second = true;
        }
      });
    });
    t1.join();
    t2.join();

    if (wrote_second) {
      // Ordering: f1's payload hit the disk before f2 was written.
      EXPECT_EQ(io::read_file(dir.file("f1")), buf1.raw_payload());
      EXPECT_EQ(io::read_file(dir.file("f2")), buf2.raw_payload());
    }
  }
}

TEST_P(DurableTest, WaitDurableBlocksUntilFsyncCompletes) {
  DurableFile f(dir_.file("f1"));
  DurableBuffer buf("payload");
  std::atomic<bool> waiter_done{false};

  std::thread waiter([&] {
    stm::atomic([&](stm::Tx& tx) { wait_durable(tx, buf); });
    waiter_done.store(true);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(waiter_done.load());

  stm::atomic([&](stm::Tx& tx) { durable_write(tx, f, buf); });
  waiter.join();
  EXPECT_TRUE(waiter_done.load());
}

TEST_P(DurableTest, ChainOfThreeOrderedWrites) {
  DurableFile f1(dir_.file("f1")), f2(dir_.file("f2")), f3(dir_.file("f3"));
  DurableBuffer b1("one"), b2("two"), b3("three");

  std::thread t3([&] {
    stm::atomic([&](stm::Tx& tx) {
      wait_durable(tx, b2);
      durable_write(tx, f3, b3);
    });
  });
  std::thread t2([&] {
    stm::atomic([&](stm::Tx& tx) {
      wait_durable(tx, b1);
      durable_write(tx, f2, b2);
    });
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  stm::atomic([&](stm::Tx& tx) { durable_write(tx, f1, b1); });
  t2.join();
  t3.join();

  EXPECT_EQ(io::read_file(dir_.file("f1")), "one");
  EXPECT_EQ(io::read_file(dir_.file("f2")), "two");
  EXPECT_EQ(io::read_file(dir_.file("f3")), "three");
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, DurableTest, test::AllAlgos(),
                         test::algo_param_name);

}  // namespace
}  // namespace adtm::durable
