// The pipeline_out reliability loop (paper Listing 7): write_fully must
// survive partial writes and transient EAGAIN on slow descriptors.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <string>
#include <thread>

#include "io/posix_file.hpp"

namespace adtm::io {
namespace {

TEST(Reliability, WriteFullySurvivesPartialWritesOnPipe) {
  // A pipe has a small kernel buffer; writing much more than its capacity
  // forces partial writes. A slow reader drains concurrently.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);

  const std::string payload(1 << 20, 'x');  // 1 MiB >> pipe buffer
  std::string received;
  std::thread reader([&] {
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(fds[0], buf, sizeof(buf));
      if (n <= 0) break;
      received.append(buf, static_cast<std::size_t>(n));
      std::this_thread::yield();  // keep the writer hitting a full pipe
    }
  });

  {
    // Adopt the write end via /proc to reuse PosixFile's loop... simpler:
    // drive ::write through the same reliability loop by wrapping the fd.
    // PosixFile has no fd-adoption constructor by design; use the free
    // loop directly through a temporary file object is not possible, so
    // replicate the contract with the raw syscall loop under test via
    // write() on the fd — the loop logic lives in PosixFile::write_fully,
    // so expose it through a file opened on /dev/fd.
    PosixFile f = PosixFile::open_append("/dev/fd/" + std::to_string(fds[1]));
    f.write_fully(payload.data(), payload.size());
  }
  ::close(fds[1]);
  reader.join();
  ::close(fds[0]);
  EXPECT_EQ(received.size(), payload.size());
  EXPECT_EQ(received, payload);
}

TEST(Reliability, WriteFullySurvivesEagainOnNonblockingPipe) {
  int fds[2];
  ASSERT_EQ(::pipe2(fds, O_NONBLOCK), 0);

  const std::string payload(256 * 1024, 'y');
  std::string received;
  std::thread reader([&] {
    char buf[1024];
    for (;;) {
      const ssize_t n = ::read(fds[0], buf, sizeof(buf));
      if (n > 0) {
        received.append(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) break;
      if (errno == EAGAIN) {
        std::this_thread::yield();
        continue;
      }
      break;
    }
  });

  {
    PosixFile f = PosixFile::open_append("/dev/fd/" + std::to_string(fds[1]));
    // The write end is O_NONBLOCK via the original description? No:
    // /dev/fd reopens the pipe; set O_NONBLOCK explicitly on the new fd.
    ASSERT_EQ(::fcntl(f.fd(), F_SETFL, O_NONBLOCK), 0);
    f.write_fully(payload.data(), payload.size());  // transient EAGAINs
  }
  ::close(fds[1]);
  reader.join();
  ::close(fds[0]);
  EXPECT_EQ(received, payload);
}

}  // namespace
}  // namespace adtm::io
