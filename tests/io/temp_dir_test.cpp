#include "io/temp_dir.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "io/posix_file.hpp"

namespace adtm::io {
namespace {

TEST(TempDir, CreatesExistingDirectory) {
  TempDir dir;
  EXPECT_TRUE(std::filesystem::is_directory(dir.path()));
}

TEST(TempDir, DistinctInstancesGetDistinctPaths) {
  TempDir a, b;
  EXPECT_NE(a.path(), b.path());
}

TEST(TempDir, RemovedOnDestruction) {
  std::string path;
  {
    TempDir dir;
    path = dir.path();
    write_file(dir.file("x"), std::string("contents"));
    EXPECT_TRUE(std::filesystem::exists(path));
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(TempDir, FileJoinsPath) {
  TempDir dir;
  EXPECT_EQ(dir.file("name.txt"), dir.path() + "/name.txt");
}

}  // namespace
}  // namespace adtm::io
