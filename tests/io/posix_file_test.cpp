#include "io/posix_file.hpp"

#include <gtest/gtest.h>

#include <system_error>

#include "io/temp_dir.hpp"

namespace adtm::io {
namespace {

class PosixFileTest : public ::testing::Test {
 protected:
  TempDir dir_{"adtm-io-test"};
};

TEST_F(PosixFileTest, CreateWriteReadRoundTrip) {
  const std::string path = dir_.file("a.txt");
  {
    PosixFile f = PosixFile::create(path);
    f.write_fully("hello world", 11);
  }
  EXPECT_EQ(read_file(path), "hello world");
}

TEST_F(PosixFileTest, AppendExtends) {
  const std::string path = dir_.file("b.txt");
  write_file(path, std::string("one"));
  {
    PosixFile f = PosixFile::open_append(path);
    f.write_fully("two", 3);
  }
  EXPECT_EQ(read_file(path), "onetwo");
}

TEST_F(PosixFileTest, OpenReadMissingFileThrows) {
  EXPECT_THROW(PosixFile::open_read(dir_.file("missing")), std::system_error);
}

TEST_F(PosixFileTest, SizeAndSeekEnd) {
  const std::string path = dir_.file("c.txt");
  write_file(path, std::string(1234, 'x'));
  PosixFile f = PosixFile::open_rw(path);
  EXPECT_EQ(f.size(), 1234u);
  EXPECT_EQ(f.seek_end(), 1234u);
}

TEST_F(PosixFileTest, PwriteAtOffset) {
  const std::string path = dir_.file("d.txt");
  write_file(path, std::string("AAAAAAAA"));
  PosixFile f = PosixFile::open_rw(path);
  f.pwrite_fully("BB", 2, 3);
  EXPECT_EQ(read_file(path), "AAABBAAA");
}

TEST_F(PosixFileTest, PreadAtOffset) {
  const std::string path = dir_.file("e.txt");
  write_file(path, std::string("0123456789"));
  PosixFile f = PosixFile::open_read(path);
  char buf[4];
  EXPECT_EQ(f.pread_some(buf, 4, 3), 4u);
  EXPECT_EQ(std::string(buf, 4), "3456");
}

TEST_F(PosixFileTest, ReadFullyThrowsOnPrematureEof) {
  const std::string path = dir_.file("f.txt");
  write_file(path, std::string("abc"));
  PosixFile f = PosixFile::open_read(path);
  char buf[16];
  EXPECT_THROW(f.read_fully(buf, 16), std::system_error);
}

TEST_F(PosixFileTest, MoveTransfersOwnership) {
  const std::string path = dir_.file("g.txt");
  PosixFile a = PosixFile::create(path);
  const int fd = a.fd();
  PosixFile b = std::move(a);
  EXPECT_FALSE(a.is_open());  // NOLINT: checking moved-from state
  EXPECT_TRUE(b.is_open());
  EXPECT_EQ(b.fd(), fd);
}

TEST_F(PosixFileTest, SyncSucceedsOnRegularFile) {
  PosixFile f = PosixFile::create(dir_.file("h.txt"));
  f.write_fully("data", 4);
  EXPECT_NO_THROW(f.sync());
}

TEST_F(PosixFileTest, CloseIsIdempotent) {
  PosixFile f = PosixFile::create(dir_.file("i.txt"));
  f.close();
  EXPECT_FALSE(f.is_open());
  EXPECT_NO_THROW(f.close());
}

TEST_F(PosixFileTest, LargeWriteRoundTrip) {
  const std::string path = dir_.file("large.bin");
  std::string data(3 * 1024 * 1024, '\0');
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i * 131 + (i >> 11));
  }
  write_file(path, data);
  EXPECT_EQ(read_file(path), data);
}

}  // namespace
}  // namespace adtm::io
