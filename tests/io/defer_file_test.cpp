// DeferFile: the Listing 6 microbenchmark operation, exercised in all
// three configurations the paper compares (deferred, irrevocable, locked).
#include "io/defer_file.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "defer/atomic_defer.hpp"
#include "io/temp_dir.hpp"
#include "support/algo_param.hpp"

namespace adtm::io {
namespace {

using test::AlgoTest;

int count_lines(const std::string& text) {
  int n = 0;
  for (char c : text) n += (c == '\n');
  return n;
}

class DeferFileTest : public AlgoTest {
 protected:
  TempDir dir_{"adtm-deferfile"};
};

TEST_P(DeferFileTest, AppendRecordsContentAndLength) {
  DeferFile file(dir_.file("log"));
  file.append_with_length("first");   // length 0 at time of append
  file.append_with_length("second");  // length 8 ("first:0\n")
  const std::string data = read_file(file.path());
  EXPECT_EQ(data, "first:0\nsecond:8\n");
}

TEST_P(DeferFileTest, DeferredAppendsViaAtomicDefer) {
  DeferFile file(dir_.file("log"));
  constexpr int kOps = 20;
  for (int i = 0; i < kOps; ++i) {
    stm::atomic([&](stm::Tx& tx) {
      atomic_defer(tx, [&file, i] {
        file.append_with_length("op" + std::to_string(i));
      }, file);
    });
  }
  EXPECT_EQ(count_lines(read_file(file.path())), kOps);
}

TEST_P(DeferFileTest, IrrevocableAppends) {
  DeferFile file(dir_.file("log"));
  constexpr int kOps = 20;
  for (int i = 0; i < kOps; ++i) {
    stm::atomic([&](stm::Tx& tx) {
      stm::become_irrevocable(tx);
      file.append_with_length("op" + std::to_string(i));
    });
  }
  EXPECT_EQ(count_lines(read_file(file.path())), kOps);
}

TEST_P(DeferFileTest, ConcurrentDeferredAppendsAllLand) {
  DeferFile file(dir_.file("log"));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 30;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        stm::atomic([&](stm::Tx& tx) {
          atomic_defer(tx, [&file, t, i] {
            file.append_with_length("t" + std::to_string(t) + "op" +
                                    std::to_string(i));
          }, file);
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(count_lines(read_file(file.path())), kThreads * kPerThread);
}

TEST_P(DeferFileTest, KeepOpenVariantAppends) {
  DeferFile file(dir_.file("log"));
  file.append_keep_open("a");
  file.append_keep_open("b");
  file.close_persistent();
  const std::string data = read_file(file.path());
  EXPECT_EQ(data, "a:0\nb:4\n");
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, DeferFileTest, test::AllAlgos(),
                         test::algo_param_name);

}  // namespace
}  // namespace adtm::io
