#include "wal/crc32.hpp"

#include <gtest/gtest.h>

#include <string>

namespace adtm::wal {
namespace {

TEST(Crc32, KnownVectors) {
  // Standard CRC-32 (IEEE) check values.
  EXPECT_EQ(crc32(std::string{""}), 0x00000000u);
  EXPECT_EQ(crc32(std::string{"123456789"}), 0xCBF43926u);
  EXPECT_EQ(crc32(std::string{"a"}), 0xE8B7BE43u);
  EXPECT_EQ(crc32(std::string{"abc"}), 0x352441C2u);
  EXPECT_EQ(crc32(std::string{"The quick brown fox jumps over the lazy dog"}),
            0x414FA339u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data = "write-ahead logging with atomic deferral";
  std::uint32_t crc = 0;
  for (char c : data) crc = crc32_update(crc, &c, 1);
  EXPECT_EQ(crc, crc32(data));
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::string data(1024, 'q');
  const std::uint32_t clean = crc32(data);
  for (std::size_t pos : {0u, 511u, 1023u}) {
    std::string corrupt = data;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x01);
    EXPECT_NE(crc32(corrupt), clean) << "flip at " << pos;
  }
}

TEST(Crc32, DifferentLengthsDiffer) {
  EXPECT_NE(crc32(std::string{"aa"}), crc32(std::string{"aaa"}));
}

}  // namespace
}  // namespace adtm::wal
