// WAL recovery fuzz: random byte flips and truncations of a valid log must
// never crash recover(); it returns a verified prefix (checksums catch
// every payload flip) and recover_and_truncate always leaves a clean log.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "io/posix_file.hpp"
#include "io/temp_dir.hpp"
#include "stm/api.hpp"
#include "wal/wal.hpp"

namespace adtm::wal {
namespace {

class WalFuzz : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { stm::init({.algo = stm::Algo::TL2}); }

  // Build a valid log with varied record sizes; returns its bytes.
  std::string build_log(const std::string& path, std::uint64_t seed) {
    WriteAheadLog log(path);
    Xoshiro256 rng{seed};
    for (int i = 0; i < 40; ++i) {
      std::string payload(1 + rng.next_below(300), '\0');
      for (auto& c : payload) c = static_cast<char>(rng.next());
      log.append(std::move(payload));
    }
    log.flush();
    return io::read_file(path);
  }
};

TEST_P(WalFuzz, ByteFlipsYieldVerifiedPrefix) {
  io::TempDir dir("adtm-walfuzz");
  const std::string path = dir.file("wal.log");
  const std::string clean = build_log(path, 500 + GetParam());
  const auto reference = WriteAheadLog::recover(path);
  ASSERT_TRUE(reference.clean);
  ASSERT_EQ(reference.records.size(), 40u);

  Xoshiro256 rng{static_cast<std::uint64_t>(GetParam()) * 7 + 1};
  for (int trial = 0; trial < 60; ++trial) {
    std::string damaged = clean;
    const std::size_t pos = rng.next_below(damaged.size());
    damaged[pos] = static_cast<char>(
        damaged[pos] ^ static_cast<char>(1 + rng.next_below(255)));
    io::write_file(path, damaged);

    const auto r = WriteAheadLog::recover(path);
    // Every recovered record must equal the reference record at the same
    // position: checksums make silent payload corruption impossible.
    ASSERT_LE(r.records.size(), reference.records.size());
    for (std::size_t i = 0; i < r.records.size(); ++i) {
      EXPECT_EQ(r.records[i], reference.records[i])
          << "trial " << trial << " record " << i;
    }
    // A single flip always damages exactly one record's header or payload,
    // so at most one record may be lost from the prefix... unless it hit a
    // length field, after which parsing desynchronizes — that still only
    // shortens the prefix. Clean can only be reported for an undamaged
    // parse, which a flip inside the parsed region forbids.
    if (r.clean) {
      EXPECT_EQ(r.records.size(), reference.records.size());
    }
  }
}

TEST_P(WalFuzz, TruncationsRecoverCleanlyAfterTruncate) {
  io::TempDir dir("adtm-walfuzz");
  const std::string path = dir.file("wal.log");
  const std::string clean = build_log(path, 900 + GetParam());
  const auto reference = WriteAheadLog::recover(path);

  Xoshiro256 rng{static_cast<std::uint64_t>(GetParam()) * 13 + 5};
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t keep = rng.next_below(clean.size());
    io::write_file(path, clean.substr(0, keep));

    const auto r = WriteAheadLog::recover_and_truncate(path);
    for (std::size_t i = 0; i < r.records.size(); ++i) {
      EXPECT_EQ(r.records[i], reference.records[i]);
    }
    // After truncation the log must be clean and reopenable.
    const auto again = WriteAheadLog::recover(path);
    EXPECT_TRUE(again.clean);
    EXPECT_EQ(again.records.size(), r.records.size());
    WriteAheadLog reopened(path);
    EXPECT_EQ(reopened.durable_lsn_direct(), r.records.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalFuzz, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace adtm::wal
