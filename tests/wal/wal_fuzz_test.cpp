// WAL recovery fuzz: random byte flips and truncations of a valid log must
// never crash recover(); it returns a verified prefix (checksums catch
// every payload flip) and recover_and_truncate always leaves a clean log.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "faultsim/faultsim.hpp"
#include "io/posix_file.hpp"
#include "io/temp_dir.hpp"
#include "stm/api.hpp"
#include "wal/wal.hpp"

namespace adtm::wal {
namespace {

class WalFuzz : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { stm::init({.backend = "tl2"}); }

  // Build a valid log with varied record sizes; returns its bytes.
  std::string build_log(const std::string& path, std::uint64_t seed) {
    WriteAheadLog log(path);
    Xoshiro256 rng{seed};
    for (int i = 0; i < 40; ++i) {
      std::string payload(1 + rng.next_below(300), '\0');
      for (auto& c : payload) c = static_cast<char>(rng.next());
      log.append(std::move(payload));
    }
    log.flush();
    return io::read_file(path);
  }
};

TEST_P(WalFuzz, ByteFlipsYieldVerifiedPrefix) {
  io::TempDir dir("adtm-walfuzz");
  const std::string path = dir.file("wal.log");
  const std::string clean = build_log(path, 500 + GetParam());
  const auto reference = WriteAheadLog::recover(path);
  ASSERT_TRUE(reference.clean);
  ASSERT_EQ(reference.records.size(), 40u);

  Xoshiro256 rng{static_cast<std::uint64_t>(GetParam()) * 7 + 1};
  for (int trial = 0; trial < 60; ++trial) {
    std::string damaged = clean;
    const std::size_t pos = rng.next_below(damaged.size());
    damaged[pos] = static_cast<char>(
        damaged[pos] ^ static_cast<char>(1 + rng.next_below(255)));
    io::write_file(path, damaged);

    const auto r = WriteAheadLog::recover(path);
    // Every recovered record must equal the reference record at the same
    // position: checksums make silent payload corruption impossible.
    ASSERT_LE(r.records.size(), reference.records.size());
    for (std::size_t i = 0; i < r.records.size(); ++i) {
      EXPECT_EQ(r.records[i], reference.records[i])
          << "trial " << trial << " record " << i;
    }
    // A single flip always damages exactly one record's header or payload,
    // so at most one record may be lost from the prefix... unless it hit a
    // length field, after which parsing desynchronizes — that still only
    // shortens the prefix. Clean can only be reported for an undamaged
    // parse, which a flip inside the parsed region forbids.
    if (r.clean) {
      EXPECT_EQ(r.records.size(), reference.records.size());
    }
  }
}

TEST_P(WalFuzz, TruncationsRecoverCleanlyAfterTruncate) {
  io::TempDir dir("adtm-walfuzz");
  const std::string path = dir.file("wal.log");
  const std::string clean = build_log(path, 900 + GetParam());
  const auto reference = WriteAheadLog::recover(path);

  Xoshiro256 rng{static_cast<std::uint64_t>(GetParam()) * 13 + 5};
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t keep = rng.next_below(clean.size());
    io::write_file(path, clean.substr(0, keep));

    const auto r = WriteAheadLog::recover_and_truncate(path);
    for (std::size_t i = 0; i < r.records.size(); ++i) {
      EXPECT_EQ(r.records[i], reference.records[i]);
    }
    // After truncation the log must be clean and reopenable.
    const auto again = WriteAheadLog::recover(path);
    EXPECT_TRUE(again.clean);
    EXPECT_EQ(again.records.size(), r.records.size());
    WriteAheadLog reopened(path);
    EXPECT_EQ(reopened.durable_lsn_direct(), r.records.size());
  }
}

TEST_P(WalFuzz, CrashPointsMidGroupCommitRecoverToAPrefix) {
  // Unlike the byte-flip/truncation fuzz above, which damages a finished
  // file, this tears the log *while it is being written*: a faultsim crash
  // point fires inside the deferred group-commit write, persisting a
  // random prefix of the batch. Recovery must return a verified prefix of
  // [durable records, batch records] — never less than what was
  // acknowledged durable, never a corrupt record — and the reopened log
  // must truncate the tear and accept new appends.
  io::TempDir dir("adtm-walfuzz");
  Xoshiro256 rng{static_cast<std::uint64_t>(GetParam()) * 31 + 11};

  for (int trial = 0; trial < 12; ++trial) {
    const std::string path =
        dir.file("wal-crash-" + std::to_string(trial) + ".log");
    std::vector<std::string> durable_records;
    std::vector<std::string> batch_records;
    {
      WriteAheadLog log(path);
      const int durable_count = 1 + static_cast<int>(rng.next_below(4));
      for (int i = 0; i < durable_count; ++i) {
        std::string payload(1 + rng.next_below(80), '\0');
        for (auto& c : payload) c = static_cast<char>(rng.next());
        durable_records.push_back(payload);
        log.append(std::move(payload));
      }
      log.flush();

      const int batch = 2 + static_cast<int>(rng.next_below(4));
      for (int i = 0; i < batch; ++i) {
        std::string payload(1 + rng.next_below(80), '\0');
        for (auto& c : payload) c = static_cast<char>(rng.next());
        batch_records.push_back(payload);
      }
      // Crash after a random number of bytes of the group-commit write.
      faultsim::engine().arm(
          {.op = faultsim::Op::Write,
           .fault = faultsim::Fault::crash(rng.next_below(120))});
      EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                     for (const auto& p : batch_records) log.append(tx, p);
                   }),
                   faultsim::SimulatedCrash);
      EXPECT_TRUE(log.failed());
      faultsim::engine().disarm();
      // The poisoned log is dropped here, as a real crash would drop it.
    }

    std::vector<std::string> expected = durable_records;
    expected.insert(expected.end(), batch_records.begin(),
                    batch_records.end());
    const auto r = WriteAheadLog::recover(path);
    ASSERT_GE(r.records.size(), durable_records.size())
        << "trial " << trial << ": lost acknowledged-durable records";
    ASSERT_LE(r.records.size(), expected.size());
    for (std::size_t i = 0; i < r.records.size(); ++i) {
      EXPECT_EQ(r.records[i], expected[i]) << "trial " << trial;
    }

    // Reopen truncates the torn tail; the log is fully usable again.
    WriteAheadLog reopened(path);
    EXPECT_EQ(reopened.durable_lsn_direct(), r.records.size());
    reopened.append("post-crash");
    reopened.flush();
    const auto again = WriteAheadLog::recover(path);
    EXPECT_TRUE(again.clean);
    ASSERT_EQ(again.records.size(), r.records.size() + 1);
    EXPECT_EQ(again.records.back(), "post-crash");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalFuzz, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace adtm::wal
