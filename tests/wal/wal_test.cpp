// Write-ahead log: durability ordering, group commit, crash recovery.
#include "wal/wal.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "io/posix_file.hpp"
#include "io/temp_dir.hpp"
#include "support/algo_param.hpp"

namespace adtm::wal {
namespace {

using test::AlgoTest;

class WalTest : public AlgoTest {
 protected:
  io::TempDir dir_{"adtm-wal"};
  std::string log_path() const { return dir_.file("wal.log"); }
};

TEST_P(WalTest, AppendAssignsSequentialLsns) {
  WriteAheadLog log(log_path());
  EXPECT_EQ(log.append("one"), 1u);
  EXPECT_EQ(log.append("two"), 2u);
  EXPECT_EQ(log.append("three"), 3u);
  log.flush();
  EXPECT_EQ(log.durable_lsn_direct(), 3u);
}

TEST_P(WalTest, RecordsAreDurableAfterAtomicReturns) {
  WriteAheadLog log(log_path());
  const Lsn lsn = log.append("payload");
  // The deferred op completes before atomic() returns, so:
  stm::atomic([&](stm::Tx& tx) { EXPECT_TRUE(log.is_durable(tx, lsn)); });
  const auto recovered = WriteAheadLog::recover(log_path());
  ASSERT_EQ(recovered.records.size(), 1u);
  EXPECT_EQ(recovered.records[0], "payload");
  EXPECT_TRUE(recovered.clean);
}

TEST_P(WalTest, WaitDurableBlocksUntilFlushed) {
  WriteAheadLog log(log_path());
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    stm::atomic([&](stm::Tx& tx) { log.wait_durable(tx, 1); });
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke.load());
  log.append("record");
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST_P(WalTest, ConcurrentAppendsAllRecoverInLsnOrder) {
  WriteAheadLog log(log_path());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.append("t" + std::to_string(t) + ":" + std::to_string(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  log.flush();

  const auto recovered = WriteAheadLog::recover(log_path());
  EXPECT_TRUE(recovered.clean);
  ASSERT_EQ(recovered.records.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  // Per-thread order must be preserved (each thread's appends have
  // increasing LSNs).
  for (int t = 0; t < kThreads; ++t) {
    int last = -1;
    for (const auto& rec : recovered.records) {
      if (rec.rfind("t" + std::to_string(t) + ":", 0) == 0) {
        const int i = std::stoi(rec.substr(rec.find(':') + 1));
        EXPECT_GT(i, last);
        last = i;
      }
    }
    EXPECT_EQ(last, kPerThread - 1);
  }
}

TEST_P(WalTest, GroupCommitBatchesFsyncs) {
  WriteAheadLog log(log_path());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 150;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) log.append("x");
    });
  }
  for (auto& th : threads) th.join();
  log.flush();
  const std::uint64_t total = kThreads * kPerThread;
  EXPECT_EQ(log.durable_lsn_direct(), total);
  // The point of group commit: fewer fsyncs than records. With threads
  // interleaving there must be some batching; single-threaded sections
  // degrade to one fsync per record, so just require *any* combining.
  EXPECT_LT(log.fsync_count(), total);
}

TEST_P(WalTest, AppendComposesWithLargerTransaction) {
  WriteAheadLog log(log_path());
  stm::tvar<long> applied{0};
  // Log-then-apply: the WAL record and the state change commit atomically.
  stm::atomic([&](stm::Tx& tx) {
    log.append(tx, "apply:+42");
    applied.set(tx, applied.get(tx) + 42);
  });
  EXPECT_EQ(applied.load_direct(), 42);
  const auto recovered = WriteAheadLog::recover(log_path());
  ASSERT_EQ(recovered.records.size(), 1u);
  EXPECT_EQ(recovered.records[0], "apply:+42");
}

TEST_P(WalTest, ReopenResumesAfterExistingRecords) {
  {
    WriteAheadLog log(log_path());
    log.append("first");
    log.append("second");
  }
  WriteAheadLog reopened(log_path());
  EXPECT_EQ(reopened.durable_lsn_direct(), 2u);
  EXPECT_EQ(reopened.append("third"), 3u);
  reopened.flush();
  const auto recovered = WriteAheadLog::recover(log_path());
  ASSERT_EQ(recovered.records.size(), 3u);
  EXPECT_EQ(recovered.records[2], "third");
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, WalTest, test::AllAlgos(),
                         test::algo_param_name);

// --- recovery corner cases (algorithm-independent) -----------------------

class WalRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { stm::init({.backend = "tl2"}); }
  io::TempDir dir_{"adtm-wal-rec"};
  std::string log_path() const { return dir_.file("wal.log"); }

  void write_log(int records) {
    WriteAheadLog log(log_path());
    for (int i = 0; i < records; ++i) {
      log.append("record-" + std::to_string(i));
    }
    log.flush();
  }
};

TEST_F(WalRecoveryTest, MissingFileIsEmptyClean) {
  const auto r = WriteAheadLog::recover(dir_.file("nope"));
  EXPECT_TRUE(r.records.empty());
  EXPECT_TRUE(r.clean);
}

TEST_F(WalRecoveryTest, TornTailIsCut) {
  write_log(5);
  // Simulate a crash mid-write: append half a record.
  {
    io::PosixFile f = io::PosixFile::open_append(log_path());
    const char garbage[] = {0x20, 0x00, 0x00, 0x00, 0x11, 0x22};  // len=32,
    f.write_fully(garbage, sizeof(garbage));  // but only 6 bytes present
  }
  const auto r = WriteAheadLog::recover(log_path());
  EXPECT_FALSE(r.clean);
  ASSERT_EQ(r.records.size(), 5u);
  EXPECT_EQ(r.records[4], "record-4");

  // recover_and_truncate leaves a clean log.
  (void)WriteAheadLog::recover_and_truncate(log_path());
  const auto again = WriteAheadLog::recover(log_path());
  EXPECT_TRUE(again.clean);
  EXPECT_EQ(again.records.size(), 5u);
}

TEST_F(WalRecoveryTest, CorruptRecordStopsRecovery) {
  write_log(6);
  // Flip one payload byte of record 3.
  std::string data = io::read_file(log_path());
  // Record layout: 8-byte header + payload "record-i" (8 bytes) each.
  const std::size_t rec_size = 8 + 8;
  const std::size_t target = 3 * rec_size + 8 + 2;  // inside payload 3
  data[target] = static_cast<char>(data[target] ^ 0xFF);
  io::write_file(log_path(), data);

  const auto r = WriteAheadLog::recover(log_path());
  EXPECT_FALSE(r.clean);
  EXPECT_EQ(r.records.size(), 3u);  // records 0..2 survive
}

TEST_F(WalRecoveryTest, ReopenAfterTornTailResumesNumbering) {
  write_log(4);
  {
    io::PosixFile f = io::PosixFile::open_append(log_path());
    f.write_fully("junk", 4);
  }
  WriteAheadLog log(log_path());  // recovers + truncates on open
  EXPECT_EQ(log.durable_lsn_direct(), 4u);
  EXPECT_EQ(log.append("fresh"), 5u);
  log.flush();
  const auto r = WriteAheadLog::recover(log_path());
  EXPECT_TRUE(r.clean);
  ASSERT_EQ(r.records.size(), 5u);
  EXPECT_EQ(r.records[4], "fresh");
}

TEST_F(WalRecoveryTest, EmptyLogRoundTrips) {
  { WriteAheadLog log(log_path()); }
  const auto r = WriteAheadLog::recover(log_path());
  EXPECT_TRUE(r.clean);
  EXPECT_TRUE(r.records.empty());
}

}  // namespace
}  // namespace adtm::wal
