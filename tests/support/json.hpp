// Shared gtest support: a minimal JSON parser for schema-validating the
// machine-readable outputs (Chrome traces, run summaries, bench reports).
// Parses the subset those emitters produce — objects, arrays, strings
// with backslash escapes, numbers, booleans, null — and throws
// std::runtime_error with an offset on malformed input, which is exactly
// what a schema test wants.
#pragma once

#include <cctype>
#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace adtm::test {

struct Json {
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  bool is_object() const { return type == Type::Object; }
  bool is_array() const { return type == Type::Array; }
  bool is_string() const { return type == Type::String; }
  bool is_number() const { return type == Type::Number; }

  bool has(const std::string& key) const {
    return is_object() && object.count(key) != 0;
  }

  const Json& at(const std::string& key) const {
    if (!is_object()) throw std::runtime_error("json: not an object");
    const auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("json: no key " + key);
    return it->second;
  }
};

namespace detail {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json: " + why + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Json value() {
    const char c = peek();
    switch (c) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return literal("true", [] { Json j; j.type = Json::Type::Bool; j.boolean = true; return j; }());
      case 'f': return literal("false", [] { Json j; j.type = Json::Type::Bool; return j; }());
      case 'n': return literal("null", Json{});
      default: return number();
    }
  }

  Json literal(const std::string& word, Json result) {
    if (text_.compare(pos_, word.size(), word) != 0) fail("bad literal");
    pos_ += word.size();
    return result;
  }

  Json object() {
    expect('{');
    Json j;
    j.type = Json::Type::Object;
    if (consume('}')) return j;
    for (;;) {
      Json key = string_value();
      expect(':');
      j.object.emplace(std::move(key.str), value());
      if (consume('}')) return j;
      expect(',');
    }
  }

  Json array() {
    expect('[');
    Json j;
    j.type = Json::Type::Array;
    if (consume(']')) return j;
    for (;;) {
      j.array.push_back(value());
      if (consume(']')) return j;
      expect(',');
    }
  }

  Json string_value() {
    expect('"');
    Json j;
    j.type = Json::Type::String;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return j;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case 'n': j.str += '\n'; break;
          case 't': j.str += '\t'; break;
          case 'r': j.str += '\r'; break;
          case 'u':  // the emitters never produce \u; keep it raw
            j.str += "\\u";
            break;
          default: j.str += e; break;
        }
      } else {
        j.str += c;
      }
    }
    fail("unterminated string");
  }

  Json number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    Json j;
    j.type = Json::Type::Number;
    try {
      j.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return j;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

inline Json json_parse(const std::string& text) {
  return detail::JsonParser(text).parse();
}

}  // namespace adtm::test
