// Shared gtest support: parameterization over STM backends.
//
// Parameters are backend display names enumerated from the backend
// registry, so every suite instantiated with AllAlgos()/SpeculativeAlgos()
// picks up newly registered backends (e.g. "2PL") with no per-suite edits.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "stm/api.hpp"
#include "stm/backend.hpp"

namespace adtm::test {

// Fixture that installs the parameterized backend before each test.
class AlgoTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    stm::Config cfg;
    cfg.backend = GetParam();
    stm::init(cfg);
    stats().reset();
  }
};

inline std::string algo_param_name(
    const ::testing::TestParamInfo<std::string>& info) {
  return info.param;  // display names are alphanumeric, valid as-is
}

// Display names of every backend supporting rollback of arbitrary bodies.
inline std::vector<std::string> speculative_backend_names() {
  std::vector<std::string> names;
  auto& reg = stm::backend_registry();
  for (std::size_t i = 0; i < reg.size(); ++i) {
    const stm::Backend* b = reg.at(i);
    if (b->has(stm::kBackendRollback)) names.emplace_back(b->name);
  }
  return names;
}

// Display names of every registered backend.
inline std::vector<std::string> all_backend_names() {
  std::vector<std::string> names;
  auto& reg = stm::backend_registry();
  for (std::size_t i = 0; i < reg.size(); ++i) {
    names.emplace_back(reg.at(i)->name);
  }
  return names;
}

// The speculative backends (support rollback of arbitrary bodies).
inline auto SpeculativeAlgos() {
  return ::testing::ValuesIn(speculative_backend_names());
}

// Every backend, including the direct-mode CGL baseline.
inline auto AllAlgos() { return ::testing::ValuesIn(all_backend_names()); }

}  // namespace adtm::test
