// Shared gtest support: parameterization over STM algorithms.
#pragma once

#include <gtest/gtest.h>

#include <string>

#include "common/stats.hpp"
#include "stm/api.hpp"

namespace adtm::test {

// Fixture that installs the parameterized algorithm before each test.
class AlgoTest : public ::testing::TestWithParam<stm::Algo> {
 protected:
  void SetUp() override {
    stm::Config cfg;
    cfg.algo = GetParam();
    stm::init(cfg);
    stats().reset();
  }
};

inline std::string algo_param_name(
    const ::testing::TestParamInfo<stm::Algo>& info) {
  return stm::algo_name(info.param);
}

// The speculative algorithms (support rollback of arbitrary bodies).
inline auto SpeculativeAlgos() {
  return ::testing::Values(stm::Algo::TL2, stm::Algo::Eager,
                           stm::Algo::HTMSim, stm::Algo::NOrec);
}

// Every algorithm, including the direct-mode CGL baseline.
inline auto AllAlgos() {
  return ::testing::Values(stm::Algo::TL2, stm::Algo::Eager, stm::Algo::CGL,
                           stm::Algo::HTMSim, stm::Algo::NOrec);
}

}  // namespace adtm::test
