// Unit tests for the txsafety analyzer internals: the lexer, the
// scope-stack function extractor, and the cross-TU call-graph checks.
// The fixture corpus under tests/analysis/fixtures/ exercises each check
// end-to-end through the CLI; these tests pin the building blocks the
// checks stand on.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "analyzer.hpp"
#include "lexer.hpp"
#include "parse.hpp"

namespace {

using txsafety::Analyzer;
using txsafety::Corpus;
using txsafety::Finding;
using txsafety::Fn;
using txsafety::SourceFile;
using txsafety::Token;

Corpus corpus_from(
    std::vector<std::pair<std::string, std::string>> files) {
  Corpus c;
  for (auto& [path, text] : files) c.add(txsafety::lex(path, text));
  c.index();
  return c;
}

std::vector<Finding> run_check(const std::string& check,
                               const std::string& text) {
  Corpus c = corpus_from({{"t.cpp", text}});
  Analyzer az(std::move(c));
  return az.run(check, /*scoped=*/false);
}

bool has_token(const SourceFile& f, const std::string& text) {
  for (const Token& t : f.toks)
    if (t.text == text) return true;
  return false;
}

// --- lexer -----------------------------------------------------------------

TEST(Lexer, CommentsAndStringsEmitNoCodeTokens) {
  const SourceFile f = txsafety::lex("t.cpp",
                                     "// load_direct in a comment\n"
                                     "/* store_direct in a block\n"
                                     "   spanning lines */\n"
                                     "const char* s = \"load_direct(x)\";\n");
  EXPECT_FALSE(has_token(f, "load_direct"));
  EXPECT_FALSE(has_token(f, "store_direct"));
  // The string literal itself is one String token, not code.
  int strings = 0;
  for (const Token& t : f.toks)
    if (t.kind == Token::Kind::String) ++strings;
  EXPECT_EQ(strings, 1);
}

TEST(Lexer, RawStringsCollapse) {
  const SourceFile f = txsafety::lex(
      "t.cpp",
      "auto r = R\"(unbalanced { and \" and load_direct( )\";\n"
      "int after = 1;\n");
  EXPECT_FALSE(has_token(f, "load_direct"));
  EXPECT_TRUE(has_token(f, "after"));
  // The raw literal must not desync brace matching for what follows.
  const SourceFile g = txsafety::lex(
      "t.cpp", "void f() { auto r = R\"({{{)\"; int x = 0; }\n");
  int opens = 0, matched = 0;
  for (std::size_t i = 0; i < g.toks.size(); ++i) {
    if (g.toks[i].text == "{") {
      ++opens;
      if (g.match[i] >= 0) ++matched;
    }
  }
  EXPECT_EQ(opens, 1);
  EXPECT_EQ(matched, 1);
}

TEST(Lexer, PreprocessorLinesAreSkipped) {
  const SourceFile f = txsafety::lex(
      "t.cpp",
      "#include <mutex>\n"
      "#define LOCK(m) std::lock_guard<std::mutex> lk(m)\n"
      "#define LONG_MACRO(a) \\\n"
      "  do_stuff(a)\n"
      "int x = 1;\n");
  EXPECT_FALSE(has_token(f, "lock_guard"));
  EXPECT_FALSE(has_token(f, "do_stuff"));  // continuation line skipped too
  EXPECT_TRUE(has_token(f, "x"));
}

TEST(Lexer, SuppressionCommentsAreHarvested) {
  const SourceFile f = txsafety::lex(
      "t.cpp",
      "int a = 1;  // txsafety:allow(raw-tvar-access, defer-ordering)\n"
      "int b = 2;  // adtmlint:allow defer-capture\n"
      "// txsafety:allow(deadline)\n"
      "int c = 3;\n");
  EXPECT_TRUE(f.allowed(1, "raw-tvar-access"));
  EXPECT_TRUE(f.allowed(1, "defer-ordering"));
  EXPECT_FALSE(f.allowed(1, "deadline"));
  EXPECT_TRUE(f.allowed(2, "defer-capture"));
  // A comment-only suppression line covers the next code line.
  EXPECT_TRUE(f.allowed(4, "deadline"));
}

TEST(Lexer, BracketMatchingSurvivesNesting) {
  const SourceFile f =
      txsafety::lex("t.cpp", "void f() { g([&] { h(); }, x[1]); }\n");
  for (std::size_t i = 0; i < f.toks.size(); ++i) {
    const std::string& t = f.toks[i].text;
    if (t == "(" || t == "{" || t == "[") {
      ASSERT_GE(f.match[i], 0) << "unmatched " << t << " at token " << i;
      EXPECT_EQ(f.match[static_cast<std::size_t>(f.match[i])],
                static_cast<int>(i));
    }
  }
}

// --- function extractor ----------------------------------------------------

const Fn* find_fn(const std::vector<Fn>& fns, const std::string& name) {
  for (const Fn& fn : fns)
    if (fn.name == name) return &fn;
  return nullptr;
}

TEST(Extractor, NamespaceAndClassMembers) {
  const SourceFile f = txsafety::lex(
      "t.cpp",
      "namespace adtm {\n"
      "void free_fn(int a, int b) { (void)a; }\n"
      "class Widget {\n"
      " public:\n"
      "  Widget() : n_(0) {}\n"
      "  void poke(stm::Tx& tx) { n_.set(tx, 1); }\n"
      " private:\n"
      "  stm::tvar<int> n_;\n"
      "};\n"
      "}  // namespace adtm\n");
  const auto fns = txsafety::extract_functions(f, 0);
  const Fn* free_fn = find_fn(fns, "free_fn");
  ASSERT_NE(free_fn, nullptr);
  EXPECT_EQ(free_fn->cls, "");
  EXPECT_EQ(free_fn->min_args, 2);
  const Fn* ctor = find_fn(fns, "Widget");
  ASSERT_NE(ctor, nullptr);
  EXPECT_TRUE(ctor->ctor_dtor);
  const Fn* poke = find_fn(fns, "poke");
  ASSERT_NE(poke, nullptr);
  EXPECT_EQ(poke->cls, "Widget");
  EXPECT_EQ(poke->tx_param, "tx");
}

TEST(Extractor, TemplateClassMethodsAndVariadics) {
  const SourceFile f = txsafety::lex(
      "t.cpp",
      "template <typename T>\n"
      "class Box {\n"
      " public:\n"
      "  void put(stm::Tx& tx, T v) { v_.set(tx, v); }\n"
      "};\n"
      "int printf_like(const char* fmt, ...) { return 0; }\n");
  const auto fns = txsafety::extract_functions(f, 0);
  const Fn* put = find_fn(fns, "put");
  ASSERT_NE(put, nullptr);
  EXPECT_EQ(put->cls, "Box");
  EXPECT_EQ(put->tx_param, "tx");
  const Fn* pf = find_fn(fns, "printf_like");
  ASSERT_NE(pf, nullptr);
  EXPECT_EQ(pf->max_args, -1);  // variadic
}

TEST(Extractor, NestedLambdasStayInsideTheirFunction) {
  const SourceFile f = txsafety::lex(
      "t.cpp",
      "void outer() {\n"
      "  auto fn = [](int x) { return [x] { return x; }; };\n"
      "  fn(1);\n"
      "}\n"
      "void after() {}\n");
  const auto fns = txsafety::extract_functions(f, 0);
  const Fn* outer = find_fn(fns, "outer");
  const Fn* after = find_fn(fns, "after");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(after, nullptr);
  EXPECT_LT(outer->body_close, after->body_open);
}

// --- call graph + region tracking through the checks -----------------------

TEST(CallGraph, TransitiveSinkReachability) {
  Corpus c = corpus_from(
      {{"a.cpp",
        "void leaf(int fd) { ::write(fd, \"x\", 1); }\n"
        "void mid(int fd) { leaf(fd); }\n"},
       {"b.cpp",
        "void txn(stm::Tx& tx, stm::tvar<int>& v, int fd) {\n"
        "  v.set(tx, 1);\n"
        "  mid(fd);\n"
        "}\n"}});
  Analyzer az(std::move(c));
  const auto found = az.run("irrevocable-call-in-tx", /*scoped=*/false);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].path, "b.cpp");
  // The chain names both hops of the two-file route to the syscall.
  ASSERT_EQ(found[0].chain.size(), 2u);
  EXPECT_NE(found[0].chain[0].find("mid"), std::string::npos);
  EXPECT_NE(found[0].chain[1].find("leaf"), std::string::npos);
}

TEST(CallGraph, DeferredEpilogueIsNotReachable) {
  const auto found = run_check(
      "irrevocable-call-in-tx",
      "void txn(stm::Tx& tx, stm::tvar<int>& v, int fd) {\n"
      "  v.set(tx, 1);\n"
      "  atomic_defer(tx, [fd] { ::write(fd, \"x\", 1); });\n"
      "}\n");
  EXPECT_TRUE(found.empty());
}

TEST(RegionTracker, EpilogueLambdaIsExcludedFromTheTxBody) {
  // sleep_for inside the transaction body: flagged. The same call inside
  // the atomic_defer epilogue (textually still inside the stm::atomic
  // argument list): not flagged.
  const auto in_body = run_check(
      "tx-region",
      "void f(stm::tvar<int>& v) {\n"
      "  stm::atomic([&](stm::Tx& tx) {\n"
      "    std::this_thread::sleep_for(delay);\n"
      "    v.set(tx, 1);\n"
      "  });\n"
      "}\n");
  ASSERT_EQ(in_body.size(), 1u);
  EXPECT_EQ(in_body[0].line, 3);
  const auto in_epilogue = run_check(
      "tx-region",
      "void f(stm::tvar<int>& v) {\n"
      "  stm::atomic([&](stm::Tx& tx) {\n"
      "    v.set(tx, 1);\n"
      "    atomic_defer(tx, [] { std::this_thread::sleep_for(delay); });\n"
      "  });\n"
      "}\n");
  EXPECT_TRUE(in_epilogue.empty());
}

TEST(DeferOrdering, RegistrationAfterWriteIsFlagged) {
  const auto found = run_check(
      "defer-ordering",
      "void f(stm::Tx& tx, Table& table, txlog::TxLogger& logger) {\n"
      "  table.set(tx, 1, 2);\n"
      "  logger.log(tx, \"too late\");\n"
      "}\n");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].line, 3);
}

TEST(DeferOrdering, PreSubscribedObjectsMakeLaterRegistrationsReentrant) {
  const auto found = run_check(
      "defer-ordering",
      "void f(stm::Tx& tx, Account& acct) {\n"
      "  acct.subscribe(tx);\n"
      "  acct.set(tx, 1);\n"
      "  atomic_defer(tx, [] {}, acct);\n"  // reentrant: cannot block
      "}\n");
  EXPECT_TRUE(found.empty());
}

TEST(Suppression, AllowCommentSilencesAFinding) {
  const auto found = run_check(
      "defer-ordering",
      "void f(stm::Tx& tx, Table& table, txlog::TxLogger& logger) {\n"
      "  table.set(tx, 1, 2);\n"
      "  logger.log(tx, \"x\");  // txsafety:allow(defer-ordering)\n"
      "}\n");
  EXPECT_TRUE(found.empty());
}

}  // namespace
