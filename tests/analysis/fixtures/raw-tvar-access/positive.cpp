// txsafety fixture (never compiled): raw tvar access from transactional
// contexts. Expect findings.

void poke(stm::Tx& tx, stm::tvar<int>& v) {
  v.store_direct(42);  // FLAG: raw store beside a live transaction
  v.set(tx, 1);
}

int peek_in_tx(stm::Tx& tx, stm::tvar<int>& v) {
  (void)tx;
  return v.load_direct();  // FLAG: raw load inside a transactional fn
}

void store_outside(stm::tvar<int>& v) {
  v.store_direct(7);  // FLAG: raw stores are strict everywhere
}
