// txsafety fixture (never compiled): sanctioned raw tvar access. Expect
// no findings.

struct Holder {
  // Ctors/dtors run before publication / after quiescence.
  Holder() { v_.store_direct(0); }
  ~Holder() { v_.store_direct(-1); }
  // The _direct suffix marks a deliberately-raw accessor.
  int value_direct() const { return v_.load_direct(); }
  stm::tvar<int> v_;
};

// A raw load in a function with no transactional context is a point
// snapshot (monitoring, post-join asserts); tmsan owns that race class.
long snapshot(const stm::tvar<long>& v) { return v.load_direct(); }

// tx.alloc init idiom: the object is invisible until the tx commits.
void insert(stm::Tx& tx, stm::tvar<Node*>& head) {
  Node* n = tx.alloc<Node>();
  n->next.store_direct(head.get(tx));
  head.set(tx, n);
}
