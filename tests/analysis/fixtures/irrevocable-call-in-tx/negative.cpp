// txsafety fixture (never compiled): the sanctioned ways to do I/O from
// transactional code. Expect no findings.

// Deferred: the epilogue runs post-commit, where blocking is legal.
void update(stm::Tx& tx, stm::tvar<int>& v, int fd) {
  v.set(tx, v.get(tx) + 1);
  atomic_defer(tx, [fd] { ::write(fd, "x", 1); });
}

// Irrevocable: the transaction can no longer abort, so in-place I/O is
// safe from re-execution.
void flush_now(stm::Tx& tx, int fd) {
  stm::become_irrevocable(tx);
  ::write(fd, "x", 1);
}
