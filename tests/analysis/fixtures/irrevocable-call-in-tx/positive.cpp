// txsafety fixture (never compiled): irrevocable operations reachable
// from transactional code. Expect findings.

void audit(int fd, const char* buf, int n) {
  ::write(fd, buf, n);  // POSIX sink, two hops from the region below
}

void log_line(int fd) { audit(fd, "x", 1); }

void update(stm::Tx& tx, stm::tvar<int>& v, int fd) {
  v.set(tx, v.get(tx) + 1);
  log_line(fd);  // FLAG: reaches ::write transitively
}

void nap(stm::Tx& tx, stm::tvar<int>& v) {
  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // FLAG
  v.set(tx, 1);
}
