// txsafety fixture (never compiled): deferred epilogues touching the STM
// runtime. Expect findings.

void reenter(stm::tvar<int>& counter, Deferrable& obj) {
  stm::atomic([&](stm::Tx& tx) {
    atomic_defer(
        tx,
        [&counter] {
          // FLAG: an epilogue runs post-commit; starting a transaction
          // from it can deadlock against the commit machinery.
          stm::atomic([&](stm::Tx& inner) { counter.set(inner, 2); });
        },
        obj);
  });
}

void smuggle_handle(stm::tvar<int>& counter) {
  stm::atomic([&](stm::Tx& tx) {
    atomic_defer(tx, [&counter, &tx] {
      counter.set(tx, 3);  // FLAG: tx is dead by the time this runs
    });
  });
}
