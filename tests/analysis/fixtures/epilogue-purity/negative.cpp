// txsafety fixture (never compiled): well-behaved epilogues — plain
// post-commit side effects, no STM re-entry. Expect no findings.

void deferred_io(stm::tvar<int>& counter, Deferrable& obj, int fd) {
  stm::atomic([&](stm::Tx& tx) {
    atomic_defer(
        tx,
        [fd] {
          ::write(fd, "x", 1);  // epilogues may block and do I/O
        },
        obj);
    counter.set(tx, 1);
  });
}
