// txsafety fixture (never compiled): ordered deferral registrations
// landing after the transaction's first tvar write — the PR-6 crashmat
// lesson, replanted. Expect findings.

// The exact ordered-logger misuse crashmat caught: the log record is
// registered after the table write, so a contended registration would
// retry with a non-empty write set.
void record(stm::Tx& tx, Table& table, txlog::TxLogger& logger) {
  table.set(tx, 1, 2);
  logger.log(tx, "slot 1 <- 2");  // FLAG
}

// Same shape through atomic_defer's lock list.
void publish(stm::Tx& tx, stm::tvar<int>& slot, Deferrable& obj) {
  slot.set(tx, 7);
  atomic_defer(tx, [] {}, obj);  // FLAG: acquire after write
}
