// txsafety fixture (never compiled): well-ordered deferral use. Expect
// no findings.

// Registrations first, writes second.
void record(stm::Tx& tx, Table& table, txlog::TxLogger& logger) {
  logger.log(tx, "slot 1 <- 2");
  table.set(tx, 1, 2);
}

// Pre-subscribed objects: TxLock::acquire is reentrant for the owning
// transaction, so registrations on an already-subscribed object cannot
// block and are legal after writes.
void publish(stm::Tx& tx, Account& a, Account& b) {
  a.subscribe(tx);
  b.subscribe(tx);
  a.set(tx, 1);
  b.set(tx, 2);
  atomic_defer(tx, [] {}, a, b);
}

// The pass-nil form acquires no locks and may go anywhere.
void note(stm::Tx& tx, stm::tvar<int>& v) {
  v.set(tx, 1);
  atomic_defer(tx, [] {});
}
