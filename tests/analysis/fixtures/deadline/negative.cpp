// txsafety fixture (never compiled): sanctioned waiting. Expect no
// findings.

bool grab(stm::Tx& tx, TxLock& lock, adtm::Deadline deadline) {
  return lock.acquire(tx, deadline);  // Deadline overload, not _for/_until
}

// std::condition_variable waits take the lock first; they are OS waits,
// not ours, and are exempt by shape.
void wait_os(std::condition_variable& cv, std::unique_lock<std::mutex>& lk) {
  cv.wait_for(lk, std::chrono::milliseconds(10));
}
