// txsafety fixture (never compiled): deprecated _until/_for timed-wait
// spellings. Expect findings.

bool grab(stm::Tx& tx, TxLock& lock, std::chrono::milliseconds budget) {
  return lock.acquire_for(tx, budget);  // FLAG: use adtm::Deadline
}

bool wait_slot(stm::Tx& tx, TxCondVar& cv, TimePoint deadline) {
  return cv.wait_until(tx, deadline);  // FLAG
}
