// txsafety fixture (never compiled): OS blocking primitives lexically
// inside stm::atomic bodies. Expect findings.

void blocked(stm::tvar<int>& v, std::mutex& m) {
  stm::atomic([&](stm::Tx& tx) {
    std::lock_guard<std::mutex> lk(m);  // FLAG: OS lock in a tx body
    v.set(tx, 1);
  });
}

void sleepy(stm::tvar<int>& v) {
  stm::atomic([&](stm::Tx& tx) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));  // FLAG
    v.set(tx, 2);
  });
}
