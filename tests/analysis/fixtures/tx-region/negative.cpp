// txsafety fixture (never compiled): blocking where blocking is legal.
// Expect no findings.

// An atomic_defer epilogue is textually inside the stm::atomic argument
// list but runs post-commit; it may block.
void deferred_sleep(stm::tvar<int>& v, Deferrable& obj) {
  stm::atomic([&](stm::Tx& tx) {
    atomic_defer(
        tx,
        [] { std::this_thread::sleep_for(std::chrono::milliseconds(10)); },
        obj);
    v.set(tx, 1);
  });
}

// Outside any transaction, OS locks are nobody's business but yours.
void plain(std::mutex& m, int& n) {
  std::lock_guard<std::mutex> lk(m);
  ++n;
}
