// txsafety fixture (never compiled): deferred lambdas capturing what
// they need by value, or naming objects that outlive the transaction.
// Expect no findings.

void by_value(stm::tvar<int>& v, Deferrable& obj) {
  stm::atomic([&](stm::Tx& tx) {
    int n = v.get(tx);
    v.set(tx, n + 1);
    atomic_defer(tx, [n] { publish(n); }, obj);
  });
}

void outer_object(stm::tvar<int>& v, Deferrable& obj, Sink& sink) {
  // sink outlives the transaction: referencing it is deliberate and fine.
  stm::atomic([&](stm::Tx& tx) {
    v.set(tx, 1);
    atomic_defer(tx, [&sink] { sink.flush(); }, obj);
  });
}
