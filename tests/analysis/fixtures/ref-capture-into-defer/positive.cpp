// txsafety fixture (never compiled): by-reference captures of
// transaction state into deferred lambdas. Expect findings.

void blanket(stm::tvar<int>& v, Deferrable& obj) {
  stm::atomic([&](stm::Tx& tx) {
    int n = v.get(tx);
    v.set(tx, n + 1);
    atomic_defer(tx, [&] { publish(n); }, obj);  // FLAG: blanket [&]
  });
}

void region_local(stm::tvar<int>& v, Deferrable& obj) {
  stm::atomic([&](stm::Tx& tx) {
    int n = v.get(tx);
    v.set(tx, n + 1);
    // FLAG: n is re-created on every retry; the epilogue would alias the
    // last attempt's dead frame.
    atomic_defer(tx, [&n] { publish(n); }, obj);
  });
}
