// txsafety fixture (never compiled): ADTM_* knobs read outside the
// RuntimeConfig layer. Expect findings.

#include <cstdlib>

int worker_threads() {
  const char* raw = std::getenv("ADTM_THREADS");  // FLAG
  return raw != nullptr ? atoi(raw) : 4;
}
