// txsafety fixture (never compiled): configuration read the sanctioned
// ways. Expect no findings.

#include <cstdlib>

int worker_threads() {
  // ADTM_* knobs flow through the env helpers, which centralize defaults
  // and validation.
  return adtm::env::get_int("ADTM_THREADS", 4);
}

const char* home_dir() {
  return std::getenv("HOME");  // non-ADTM variables are out of scope
}
