// txsafety fixture (never compiled): backend selection through the
// registry. Expect no findings.

void pick_backend(stm::Config& cfg, bool fast) {
  cfg.backend = fast ? "tl2" : "cgl";
}

bool have_backend(const std::string& name) {
  return stm::find_backend(name) != nullptr;
}
