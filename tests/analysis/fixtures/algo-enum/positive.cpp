// txsafety fixture (never compiled): stm::Algo enum dispatch outside the
// STM core. Expect findings.

void pick_backend(stm::Config& cfg, bool fast) {
  cfg.algo = fast ? stm::Algo::TL2 : stm::Algo::CGL;  // FLAG (twice)
}
