// Seeded key-distribution generators: determinism and the zipfian
// frequency-rank law (the property the OLTP harness's skew knob depends
// on).
#include "common/keygen.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

namespace adtm {
namespace {

TEST(ZipfianGenTest, DeterministicForSeed) {
  const ZipfianSpec spec(1024, 0.99);
  ZipfianGen a(spec, 42), b(spec, 42), c(spec, 43);
  bool diverged = false;
  for (int i = 0; i < 1000; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next()) << "same seed diverged at sample " << i;
    if (va != c.next()) diverged = true;
  }
  EXPECT_TRUE(diverged) << "different seeds produced identical streams";
}

TEST(ZipfianGenTest, RanksStayInRange) {
  const ZipfianSpec spec(100, 0.5);
  ZipfianGen gen(spec, 7);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_LT(gen.next(), 100u);
  }
}

TEST(ZipfianGenTest, FrequencyRankSlopeMatchesTheta) {
  // Under zipf(theta), freq(rank) ~ 1/(rank+1)^theta: the least-squares
  // slope of log(freq) against log(rank+1) over the well-sampled head
  // must come out near -theta. Seeded, so this is deterministic — the
  // tolerance covers sampling noise at this N, not run-to-run variance.
  constexpr double kTheta = 0.99;
  constexpr std::uint64_t kItems = 1000;
  constexpr int kSamples = 400000;
  const ZipfianSpec spec(kItems, kTheta);
  ZipfianGen gen(spec, 12345);
  std::vector<std::uint64_t> counts(kItems, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[gen.next()];

  constexpr int kHead = 50;  // every head rank has thousands of hits
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (int r = 0; r < kHead; ++r) {
    ASSERT_GT(counts[r], 0u) << "head rank " << r << " never drawn";
    const double x = std::log(static_cast<double>(r + 1));
    const double y = std::log(static_cast<double>(counts[r]));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double slope =
      (kHead * sxy - sx * sy) / (kHead * sxx - sx * sx);
  EXPECT_NEAR(slope, -kTheta, 0.08) << "zipf law violated";

  // The head carries most of the mass; rank 0 dominates rank 1 by ~2^theta.
  const double ratio =
      static_cast<double>(counts[0]) / static_cast<double>(counts[1]);
  EXPECT_NEAR(ratio, std::pow(2.0, kTheta), 0.25);
}

TEST(ZipfianGenTest, LowThetaApproachesUniform) {
  constexpr std::uint64_t kItems = 64;
  constexpr int kSamples = 256000;
  const ZipfianSpec spec(kItems, 0.01);
  ZipfianGen gen(spec, 99);
  std::vector<std::uint64_t> counts(kItems, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[gen.next()];
  const double expected = static_cast<double>(kSamples) / kItems;
  for (std::uint64_t r = 0; r < kItems; ++r) {
    EXPECT_GT(counts[r], expected * 0.7) << "rank " << r;
    EXPECT_LT(counts[r], expected * 1.4) << "rank " << r;
  }
}

TEST(ScrambleTest, BijectiveOverSampledRanksAndInRange) {
  // mix64 is a bijection on 64-bit words, so distinct ranks rarely
  // collide after the modulo; what matters here is range and that the
  // scramble decorrelates adjacent ranks.
  constexpr std::uint64_t kItems = 1u << 20;
  std::set<std::uint64_t> seen;
  for (std::uint64_t r = 0; r < 1000; ++r) {
    const std::uint64_t k = scramble(r, kItems);
    EXPECT_LT(k, kItems);
    seen.insert(k);
  }
  // A 1000-draw birthday collision over 2^20 slots is ~38% likely, but
  // more than a handful means mixing is broken.
  EXPECT_GE(seen.size(), 995u);
  // Determinism.
  EXPECT_EQ(scramble(17, kItems), scramble(17, kItems));
}

TEST(KeyPickerTest, UniformCoversSpaceDeterministically) {
  constexpr std::uint64_t kItems = 4096;
  KeyPicker a(kItems, 5), b(kItems, 5);
  double sum = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t k = a.next();
    EXPECT_EQ(k, b.next());
    EXPECT_LT(k, kItems);
    sum += static_cast<double>(k);
  }
  const double mean = sum / kSamples;
  EXPECT_NEAR(mean, kItems / 2.0, kItems * 0.02);
}

TEST(KeyPickerTest, ZipfianModeScattersHotKeys) {
  // Scrambled zipfian: heavy skew must survive the scramble (a few keys
  // carry much of the mass) but the hot keys must not be adjacent.
  constexpr std::uint64_t kItems = 1u << 16;
  const ZipfianSpec spec(kItems, 0.99);
  KeyPicker picker(spec, 31);
  std::vector<std::uint32_t> counts(kItems, 0);
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) ++counts[picker.next()];

  std::vector<std::uint64_t> hot;
  for (std::uint64_t k = 0; k < kItems; ++k) {
    if (counts[k] > kSamples / 100) hot.push_back(k);
  }
  ASSERT_GE(hot.size(), 2u) << "no hot keys: skew lost in scrambling";
  ASSERT_LE(hot.size(), 32u) << "too many hot keys: distribution flat";
  for (std::size_t i = 1; i < hot.size(); ++i) {
    EXPECT_GT(hot[i] - hot[i - 1], 1u) << "hot keys adjacent: not scrambled";
  }
}

TEST(ZipfianSpecTest, ExposesParameters) {
  const ZipfianSpec spec(123, 0.7);
  EXPECT_EQ(spec.items(), 123u);
  EXPECT_DOUBLE_EQ(spec.theta(), 0.7);
  // Degenerate sizes clamp instead of dividing by zero.
  const ZipfianSpec tiny(0, 0.5);
  EXPECT_EQ(tiny.items(), 1u);
  ZipfianGen gen(tiny, 1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(gen.next(), 0u);
}

}  // namespace
}  // namespace adtm
