// adtm::RuntimeConfig: one-shot resolution of the ADTM_* knobs and the
// programmatic configure() override that pushes gates into running
// singletons.
#include "common/runtime_config.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "obs/trace.hpp"
#include "stm/config.hpp"

namespace adtm {
namespace {

class RuntimeConfigTest : public ::testing::Test {
 protected:
  void TearDown() override {
    // Re-resolve from the environment so overrides never leak.
    configure(runtime_config_from_env());
    obs::disable();
    obs::clear();
  }
};

TEST_F(RuntimeConfigTest, EnvResolutionHasDocumentedDefaults) {
  // The suite runs without ADTM_* set, so from-env equals the defaults.
  const RuntimeConfig cfg = runtime_config_from_env();
  EXPECT_EQ(cfg.starvation_threshold, 64u);
  EXPECT_FALSE(cfg.lock_stats);
  EXPECT_EQ(cfg.stall_budget_ms, 2000u);
  EXPECT_EQ(cfg.watchdog_interval_ms, 200u);
  EXPECT_EQ(cfg.watchdog_action, "report");
  EXPECT_EQ(cfg.reap_budgets, 4u);
  EXPECT_FALSE(cfg.trace);
  EXPECT_EQ(cfg.trace_ring_capacity, 8192u);
  EXPECT_EQ(cfg.trace_max_events, std::size_t{1} << 18);
  EXPECT_EQ(cfg.trace_out, "adtm_trace.json");
}

TEST_F(RuntimeConfigTest, ConfigureReplacesTheProcessSnapshot) {
  RuntimeConfig cfg = runtime_config();
  cfg.starvation_threshold = 7;
  cfg.stall_budget_ms = 123;
  configure(cfg);
  EXPECT_EQ(runtime_config().starvation_threshold, 7u);
  EXPECT_EQ(runtime_config().stall_budget_ms, 123u);
  // Consumers that resolve through the snapshot see the override.
  EXPECT_EQ(stm::Config::default_starvation_threshold(), 7u);
  EXPECT_EQ(stm::Config{}.starvation_threshold, 7u);
}

TEST_F(RuntimeConfigTest, ConfigureGatesLockStats) {
  RuntimeConfig cfg = runtime_config();
  cfg.lock_stats = true;
  configure(cfg);
  EXPECT_TRUE(lock_stats().enabled());
  cfg.lock_stats = false;
  configure(cfg);
  EXPECT_FALSE(lock_stats().enabled());
}

TEST_F(RuntimeConfigTest, ConfigureGatesTracing) {
  ASSERT_FALSE(obs::enabled());
  RuntimeConfig cfg = runtime_config();
  cfg.trace = true;
  configure(cfg);
  EXPECT_TRUE(obs::enabled());
  cfg.trace = false;
  configure(cfg);
  EXPECT_FALSE(obs::enabled());
}

}  // namespace
}  // namespace adtm
