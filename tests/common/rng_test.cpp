#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

namespace adtm {
namespace {

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a{42}, b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 5);
}

TEST(Rng, ReseedRestartsSequence) {
  Xoshiro256 a{7};
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), first[i]);
}

TEST(Rng, NextBelowStaysInRange) {
  Xoshiro256 a{99};
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(a.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Xoshiro256 a{5};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_below(1), 0u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 a{123};
  for (int i = 0; i < 1000; ++i) {
    const double d = a.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, RoughUniformityOverBuckets) {
  Xoshiro256 a{2024};
  constexpr int kBuckets = 16;
  constexpr int kDraws = 64000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[a.next_below(kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets / 2);
    EXPECT_LT(c, kDraws / kBuckets * 2);
  }
}

TEST(Rng, ThreadRngsAreIndependentObjects) {
  Xoshiro256* main_rng = &thread_rng();
  Xoshiro256* other = nullptr;
  std::thread t([&] { other = &thread_rng(); });
  t.join();
  EXPECT_NE(main_rng, other);
}

TEST(Rng, NoShortCycle) {
  Xoshiro256 a{3};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(a.next());
  EXPECT_EQ(seen.size(), 10000u);
}

}  // namespace
}  // namespace adtm
