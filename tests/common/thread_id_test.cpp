#include "common/thread_id.hpp"

#include <gtest/gtest.h>

#include <latch>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace adtm {
namespace {

TEST(ThreadId, StableWithinThread) {
  const std::uint32_t a = thread_id();
  const std::uint32_t b = thread_id();
  EXPECT_EQ(a, b);
  EXPECT_LT(a, kMaxThreads);
}

TEST(ThreadId, DistinctAcrossConcurrentThreads) {
  // Slots recycle on thread exit, so ids are only guaranteed distinct for
  // threads that are alive simultaneously: hold them all at a latch.
  constexpr int kThreads = 8;
  std::mutex m;
  std::set<std::uint32_t> ids;
  std::latch all_started{kThreads};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      const std::uint32_t id = thread_id();
      all_started.arrive_and_wait();
      std::lock_guard<std::mutex> lk(m);
      ids.insert(id);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kThreads));
}

TEST(ThreadId, SlotsRecycleAfterThreadExit) {
  // Run many more sequential threads than kMaxThreads: slots must recycle.
  for (std::uint32_t i = 0; i < kMaxThreads + 16; ++i) {
    std::thread t([] {
      EXPECT_LT(thread_id(), kMaxThreads);
    });
    t.join();
  }
}

TEST(ThreadId, HighWaterReflectsUsage) {
  (void)thread_id();
  EXPECT_GE(thread_high_water(), 1u);
  EXPECT_LE(thread_high_water(), kMaxThreads);
}

}  // namespace
}  // namespace adtm
