// adtm::Deadline: the unified bounded-wait vocabulary type, and its
// equivalence with the deprecated `_until`/`_for` overloads it replaced.
#include "common/deadline.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/timing.hpp"
#include "defer/txcondvar.hpp"
#include "defer/txlock.hpp"
#include "stm/api.hpp"
#include "stm/tvar.hpp"

// This file deliberately exercises the deprecated forwarders to prove
// they are exact aliases of the Deadline forms.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace adtm {
namespace {

using namespace std::chrono_literals;

class DeadlineApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stm::Config cfg;
    cfg.backend = "tl2";
    stm::init(cfg);
  }
};

TEST(DeadlineTest, DefaultIsUnbounded) {
  constexpr Deadline d;
  static_assert(d.unbounded());
  static_assert(d.raw_ns() == 0);
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d, Deadline::never());
}

TEST(DeadlineTest, AtIsAbsoluteAndZeroClampsToExpired) {
  const std::uint64_t ts = now_ns() + 1'000'000'000ull;
  const Deadline d = Deadline::at(ts);
  EXPECT_FALSE(d.unbounded());
  EXPECT_EQ(d.raw_ns(), ts);
  EXPECT_FALSE(d.expired());
  // An explicit zero timestamp means "already passed", never "unbounded".
  const Deadline zero = Deadline::at(0);
  EXPECT_FALSE(zero.unbounded());
  EXPECT_TRUE(zero.expired());
}

TEST(DeadlineTest, DurationConstructionIsNowRelative) {
  const std::uint64_t before = now_ns();
  const Deadline d = 100ms;
  EXPECT_FALSE(d.unbounded());
  EXPECT_GE(d.raw_ns(), before + 100'000'000ull);
  EXPECT_FALSE(d.expired());
  // Non-positive timeouts are already expired, not unbounded.
  const Deadline past = Deadline(-5ms);
  EXPECT_FALSE(past.unbounded());
  EXPECT_TRUE(past.expired());
  EXPECT_TRUE(Deadline(0ns).expired());
}

TEST_F(DeadlineApiTest, RetryTimeoutSurvivesReExecution) {
  // The absolute-Deadline contract: constructed once outside the body,
  // the budget spans every re-execution. Rival commits wake the waiter
  // repeatedly; each wake re-runs the body, none extends the deadline.
  stm::tvar<bool> flag{false};
  stm::tvar<int> beat{0};
  std::atomic<bool> stop{false};
  std::thread heartbeat([&] {
    while (!stop.load()) {
      stm::atomic([&](stm::Tx& tx) { beat.set(tx, beat.get(tx) + 1); });
      std::this_thread::sleep_for(10ms);
    }
  });
  const std::uint64_t start = now_ns();
  const Deadline deadline = 80ms;  // absolute: now + 80ms, fixed here
  int executions = 0;
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 ++executions;
                 beat.get(tx);  // join the hammered read set: spurious wakes
                 if (!flag.get(tx)) stm::retry(tx, deadline);
               }),
               stm::RetryTimeout);
  const std::uint64_t elapsed = now_ns() - start;
  stop.store(true);
  heartbeat.join();
  EXPECT_GE(executions, 2) << "the heartbeat never woke the waiter";
  EXPECT_GE(elapsed, 80'000'000ull);
  EXPECT_LT(elapsed, 5'000'000'000ull) << "wake-ups extended the budget";
}

TEST_F(DeadlineApiTest, DeprecatedRetryFormsMatchDeadlineForms) {
  stm::tvar<bool> flag{false};
  // retry_until(ts) == retry(Deadline::at(ts)).
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 if (!flag.get(tx)) {
                   stm::retry_until(tx, now_ns() + 10'000'000ull);
                 }
               }),
               stm::RetryTimeout);
  // retry_for(d) == retry(Deadline(d)).
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 if (!flag.get(tx)) stm::retry_for(tx, 10ms);
               }),
               stm::RetryTimeout);
}

TEST_F(DeadlineApiTest, DeprecatedTxLockFormsMatchDeadlineForms) {
  TxLock lock;
  std::atomic<bool> held{false};
  std::atomic<bool> go_release{false};
  std::thread holder([&] {
    lock.acquire();
    held.store(true);
    while (!go_release.load()) std::this_thread::yield();
    lock.release();
  });
  while (!held.load()) std::this_thread::yield();

  // Timed non-transactional forms: both spellings time out identically.
  EXPECT_FALSE(lock.acquire(Deadline(20ms)));
  EXPECT_FALSE(lock.acquire_for(20ms));
  EXPECT_FALSE(lock.acquire_until(now_ns() + 20'000'000ull));
  EXPECT_FALSE(lock.subscribe(Deadline(20ms)));
  EXPECT_FALSE(lock.subscribe_for(20ms));
  EXPECT_FALSE(lock.subscribe_until(now_ns() + 20'000'000ull));

  // In-transaction timed forms raise RetryTimeout out of atomic().
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 lock.acquire(tx, Deadline::at(now_ns() + 20'000'000ull));
               }),
               stm::RetryTimeout);
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 lock.acquire_until(tx, now_ns() + 20'000'000ull);
               }),
               stm::RetryTimeout);

  // Historical quirk, preserved: deadline 0 on the in-transaction timed
  // acquire meant "unbounded", so the forwarder must not expire...
  std::atomic<bool> timed_zero_running{false};
  std::thread unbounded_waiter([&] {
    timed_zero_running.store(true);
    stm::atomic([&](stm::Tx& tx) { lock.acquire_until(tx, 0); });
    lock.release();
  });
  while (!timed_zero_running.load()) std::this_thread::yield();
  std::this_thread::sleep_for(30ms);  // would have expired a 0-deadline
  go_release.store(true);
  holder.join();
  unbounded_waiter.join();  // acquired after release, then released
  EXPECT_FALSE(lock.held_by_me());
}

TEST_F(DeadlineApiTest, DeprecatedCondVarZeroDeadlineStaysExpired) {
  // ...whereas TxCondVar::wait_until(tx, 0) historically meant "already
  // expired" — the forwarder must preserve that asymmetry, not silently
  // turn it into an unbounded wait.
  TxCondVar cv;
  stm::tvar<bool> flag{false};
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 if (!flag.get(tx)) cv.wait_until(tx, 0);
               }),
               stm::RetryTimeout);
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 if (!flag.get(tx)) cv.wait_for(tx, 10ms);
               }),
               stm::RetryTimeout);
  EXPECT_THROW(stm::atomic([&](stm::Tx& tx) {
                 if (!flag.get(tx)) cv.wait(tx, Deadline::at(0));
               }),
               stm::RetryTimeout);
}

}  // namespace
}  // namespace adtm
