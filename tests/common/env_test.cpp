#include "common/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace adtm {
namespace {

TEST(Env, FallbackWhenUnset) {
  ::unsetenv("ADTM_TEST_ENV_VAR");
  EXPECT_EQ(env_u64("ADTM_TEST_ENV_VAR", 7), 7u);
  EXPECT_EQ(env_str("ADTM_TEST_ENV_VAR", "dflt"), "dflt");
}

TEST(Env, ParsesPlainInteger) {
  ::setenv("ADTM_TEST_ENV_VAR", "1234", 1);
  EXPECT_EQ(env_u64("ADTM_TEST_ENV_VAR", 0), 1234u);
}

TEST(Env, ParsesSuffixes) {
  ::setenv("ADTM_TEST_ENV_VAR", "4k", 1);
  EXPECT_EQ(env_u64("ADTM_TEST_ENV_VAR", 0), 4096u);
  ::setenv("ADTM_TEST_ENV_VAR", "2M", 1);
  EXPECT_EQ(env_u64("ADTM_TEST_ENV_VAR", 0), 2u << 20);
  ::setenv("ADTM_TEST_ENV_VAR", "1g", 1);
  EXPECT_EQ(env_u64("ADTM_TEST_ENV_VAR", 0), 1u << 30);
}

TEST(Env, RejectsGarbage) {
  ::setenv("ADTM_TEST_ENV_VAR", "12x34", 1);
  EXPECT_EQ(env_u64("ADTM_TEST_ENV_VAR", 5), 5u);
  ::setenv("ADTM_TEST_ENV_VAR", "zzz", 1);
  EXPECT_EQ(env_u64("ADTM_TEST_ENV_VAR", 5), 5u);
}

TEST(Env, EmptyStringIsUnset) {
  ::setenv("ADTM_TEST_ENV_VAR", "", 1);
  EXPECT_EQ(env_u64("ADTM_TEST_ENV_VAR", 9), 9u);
  EXPECT_EQ(env_str("ADTM_TEST_ENV_VAR", "d"), "d");
}

TEST(Env, StringValue) {
  ::setenv("ADTM_TEST_ENV_VAR", "hello", 1);
  EXPECT_EQ(env_str("ADTM_TEST_ENV_VAR", "d"), "hello");
}

}  // namespace
}  // namespace adtm
