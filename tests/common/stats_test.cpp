#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace adtm {
namespace {

TEST(Stats, AddAndTotal) {
  StatsRegistry reg;
  EXPECT_EQ(reg.total(Counter::TxCommit), 0u);
  reg.add(Counter::TxCommit);
  reg.add(Counter::TxCommit, 4);
  EXPECT_EQ(reg.total(Counter::TxCommit), 5u);
  EXPECT_EQ(reg.total(Counter::TxAbortConflict), 0u);
}

TEST(Stats, ResetClearsEverything) {
  StatsRegistry reg;
  reg.add(Counter::TxStart, 10);
  reg.add(Counter::TxRetry, 3);
  reg.reset();
  EXPECT_EQ(reg.total(Counter::TxStart), 0u);
  EXPECT_EQ(reg.total(Counter::TxRetry), 0u);
}

TEST(Stats, SumsAcrossThreads) {
  StatsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < kPerThread; ++j) reg.add(Counter::DeferredOps);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.total(Counter::DeferredOps),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Stats, ReportListsNonzeroCounters) {
  StatsRegistry reg;
  reg.add(Counter::TxCommit, 2);
  const std::string r = reg.report();
  EXPECT_NE(r.find("tx_commit = 2"), std::string::npos);
  EXPECT_EQ(r.find("tx_retry"), std::string::npos);
}

TEST(Stats, CounterNamesAreUnique) {
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(Counter::kCount);
       ++i) {
    for (std::uint32_t j = i + 1;
         j < static_cast<std::uint32_t>(Counter::kCount); ++j) {
      EXPECT_STRNE(counter_name(static_cast<Counter>(i)),
                   counter_name(static_cast<Counter>(j)));
    }
  }
}

}  // namespace
}  // namespace adtm
