#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

namespace adtm {
namespace {

TEST(Stats, AddAndTotal) {
  StatsRegistry reg;
  EXPECT_EQ(reg.total(Counter::TxCommit), 0u);
  reg.add(Counter::TxCommit);
  reg.add(Counter::TxCommit, 4);
  EXPECT_EQ(reg.total(Counter::TxCommit), 5u);
  EXPECT_EQ(reg.total(Counter::TxAbortConflict), 0u);
}

TEST(Stats, ResetClearsEverything) {
  StatsRegistry reg;
  reg.add(Counter::TxStart, 10);
  reg.add(Counter::TxRetry, 3);
  reg.reset();
  EXPECT_EQ(reg.total(Counter::TxStart), 0u);
  EXPECT_EQ(reg.total(Counter::TxRetry), 0u);
}

TEST(Stats, SumsAcrossThreads) {
  StatsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < kPerThread; ++j) reg.add(Counter::DeferredOps);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.total(Counter::DeferredOps),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Stats, ReportListsNonzeroCounters) {
  StatsRegistry reg;
  reg.add(Counter::TxCommit, 2);
  const std::string r = reg.report();
  EXPECT_NE(r.find("tx_commit = 2"), std::string::npos);
  EXPECT_EQ(r.find("tx_retry"), std::string::npos);
}

TEST(Stats, CounterNamesAreUnique) {
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(Counter::kCount);
       ++i) {
    for (std::uint32_t j = i + 1;
         j < static_cast<std::uint32_t>(Counter::kCount); ++j) {
      EXPECT_STRNE(counter_name(static_cast<Counter>(i)),
                   counter_name(static_cast<Counter>(j)));
    }
  }
}

TEST(LatencyHistogram, BucketRoundTrip) {
  // Power-of-two buckets: bucket_of places a value, bucket_value reports a
  // representative inside the same bucket.
  EXPECT_EQ(LatencyHistogram::bucket_of(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_of(2), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(3), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(4), 3u);
  for (std::uint32_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
    EXPECT_EQ(LatencyHistogram::bucket_of(LatencyHistogram::bucket_value(b)),
              b)
        << "bucket " << b;
  }
  // The top bucket absorbs everything, including the maximum.
  EXPECT_EQ(LatencyHistogram::bucket_of(~std::uint64_t{0}),
            LatencyHistogram::kBuckets - 1);
}

TEST(LatencyHistogram, PercentilesWalkTheDistribution) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50), 0u);
  // 99 fast samples (~1 us) and one slow outlier (~1 ms): p50 stays in the
  // fast bucket, p99 lands at the fast tail, p100 reports the outlier.
  for (int i = 0; i < 99; ++i) h.record(1'000);
  h.record(1'000'000);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.percentile(50),
            LatencyHistogram::bucket_value(LatencyHistogram::bucket_of(1'000)));
  EXPECT_EQ(h.percentile(99),
            LatencyHistogram::bucket_value(LatencyHistogram::bucket_of(1'000)));
  EXPECT_EQ(h.percentile(100), LatencyHistogram::bucket_value(
                                   LatencyHistogram::bucket_of(1'000'000)));
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(99), 0u);
}

TEST(LockStats, DisabledByDefaultAndCheap) {
  LockStatsRegistry reg;
  int key;
  EXPECT_FALSE(reg.enabled());  // ADTM_LOCK_STATS unset in tests
  reg.record_wait(&key, 1'000);
  reg.record_hold(&key, 1'000);
  EXPECT_EQ(reg.wait_count(&key), 0u);
  EXPECT_EQ(reg.hold_count(&key), 0u);
  EXPECT_EQ(reg.report(), "");
}

TEST(LockStats, TracksPerLockWaitAndHold) {
  LockStatsRegistry reg;
  reg.set_enabled(true);
  int a, b;
  for (int i = 0; i < 10; ++i) reg.record_wait(&a, 2'000);
  reg.record_wait(&a, 8'000'000);
  reg.record_hold(&a, 500'000);
  reg.record_hold(&b, 1'000);
  EXPECT_EQ(reg.wait_count(&a), 11u);
  EXPECT_EQ(reg.hold_count(&a), 1u);
  EXPECT_EQ(reg.wait_count(&b), 0u);
  EXPECT_EQ(reg.hold_count(&b), 1u);
  EXPECT_EQ(reg.wait_percentile(&a, 50),
            LatencyHistogram::bucket_value(LatencyHistogram::bucket_of(2'000)));
  EXPECT_EQ(reg.wait_percentile(&a, 100),
            LatencyHistogram::bucket_value(
                LatencyHistogram::bucket_of(8'000'000)));
  const std::string r = reg.report();
  EXPECT_NE(r.find("p50"), std::string::npos) << r;
  EXPECT_NE(r.find("p99"), std::string::npos) << r;
  reg.reset();
  EXPECT_EQ(reg.wait_count(&a), 0u);
  EXPECT_EQ(reg.report(), "");
}

TEST(LockStats, FullTableCountsDrops) {
  LockStatsRegistry reg;
  reg.set_enabled(true);
  // Distinct heap pointers until the 256-entry table is guaranteed full,
  // then one more lock must be dropped (counted, not silently merged).
  std::vector<std::unique_ptr<int>> locks;
  for (std::size_t i = 0; i < LockStatsRegistry::kEntries * 4; ++i) {
    locks.push_back(std::make_unique<int>(0));
    reg.record_wait(locks.back().get(), 1'000);
  }
  EXPECT_GT(reg.dropped(), 0u);
  const std::string r = reg.report();
  EXPECT_NE(r.find("dropped"), std::string::npos) << r;
}

}  // namespace
}  // namespace adtm
