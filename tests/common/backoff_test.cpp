#include "common/backoff.hpp"

#include <gtest/gtest.h>

namespace adtm {
namespace {

TEST(Backoff, CeilingDoublesUpToMax) {
  Backoff bo{16, 256};
  EXPECT_EQ(bo.ceiling(), 16u);
  bo.pause();
  EXPECT_EQ(bo.ceiling(), 32u);
  bo.pause();
  bo.pause();
  bo.pause();
  EXPECT_EQ(bo.ceiling(), 256u);
  bo.pause();  // saturates
  EXPECT_EQ(bo.ceiling(), 256u);
}

TEST(Backoff, ResetRestoresFloor) {
  Backoff bo{16, 1024};
  for (int i = 0; i < 10; ++i) bo.pause();
  bo.reset(16);
  EXPECT_EQ(bo.ceiling(), 16u);
}

TEST(Backoff, PauseTerminates) {
  // Smoke test: a long backoff sequence completes in bounded time.
  Backoff bo;
  for (int i = 0; i < 50; ++i) bo.pause();
  SUCCEED();
}

}  // namespace
}  // namespace adtm
