#include "common/backoff.hpp"

#include <gtest/gtest.h>

namespace adtm {
namespace {

TEST(Backoff, CeilingDoublesUpToJitteredCap) {
  Backoff bo{16, 256};
  EXPECT_EQ(bo.ceiling(), 16u);
  bo.pause();
  EXPECT_EQ(bo.ceiling(), 32u);
  bo.pause();
  bo.pause();
  bo.pause();
  // The saturation point is this instance's jittered cap, not the nominal
  // max: after enough doublings the ceiling pins there exactly.
  EXPECT_EQ(bo.ceiling(), bo.cap());
  bo.pause();  // saturates
  EXPECT_EQ(bo.ceiling(), bo.cap());
}

TEST(Backoff, CapIsJitteredWithinBounds) {
  // Per-instance cap drawn uniformly from [3/4·max, max].
  bool varied = false;
  std::uint32_t first = 0;
  for (int i = 0; i < 256; ++i) {
    Backoff bo{16, 64 * 1024};
    EXPECT_GE(bo.cap(), 3u * 64 * 1024 / 4);
    EXPECT_LE(bo.cap(), 64u * 1024);
    if (i == 0) {
      first = bo.cap();
    } else if (bo.cap() != first) {
      varied = true;
    }
  }
  // 256 draws from a 16k-wide window: all-equal means the jitter is dead.
  EXPECT_TRUE(varied);
}

TEST(Backoff, TinyWindowDegradesToFixedCap) {
  for (int i = 0; i < 32; ++i) {
    Backoff bo{1, 3};  // jitter window 3/4 = 0: cap must stay exact
    EXPECT_EQ(bo.cap(), 3u);
  }
}

TEST(Backoff, NextSpinsStaysWithinCeiling) {
  Backoff bo{16, 1024};
  for (int i = 0; i < 200; ++i) {
    const std::uint32_t ceiling_before = bo.ceiling();
    const std::uint32_t spins = bo.next_spins();
    EXPECT_GE(spins, 1u);
    EXPECT_LE(spins, ceiling_before);
    EXPECT_LE(bo.ceiling(), bo.cap());
  }
}

TEST(Backoff, ResetRestoresFloorAndRedrawsCap) {
  Backoff bo{16, 64 * 1024};
  for (int i = 0; i < 20; ++i) bo.pause();
  EXPECT_EQ(bo.ceiling(), bo.cap());
  bo.reset(16);
  EXPECT_EQ(bo.ceiling(), 16u);
  EXPECT_GE(bo.cap(), 3u * 64 * 1024 / 4);
  EXPECT_LE(bo.cap(), 64u * 1024);
  // The redrawn cap still saturates the doubling as before.
  for (int i = 0; i < 20; ++i) bo.pause();
  EXPECT_EQ(bo.ceiling(), bo.cap());
}

TEST(Backoff, PauseTerminates) {
  // Smoke test: a long backoff sequence completes in bounded time.
  Backoff bo;
  for (int i = 0; i < 50; ++i) bo.pause();
  SUCCEED();
}

}  // namespace
}  // namespace adtm
