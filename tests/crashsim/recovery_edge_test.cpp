// WAL recovery edge cases the crash matrix can only hit by luck: empty
// and boundary-exact logs, CRC-valid headers over truncated payloads,
// duplicate-record replay, resumed mid-buffer retries, and recovery
// after a poisoned group commit. Each crafts the on-disk state by hand
// (or injects the fault deterministically) instead of waiting for a
// torture schedule to produce it.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "faultsim/faultsim.hpp"
#include "io/posix_file.hpp"
#include "io/temp_dir.hpp"
#include "kvcache/recoverable.hpp"
#include "stm/api.hpp"
#include "wal/crc32.hpp"
#include "wal/wal.hpp"

namespace adtm::crashsim {
namespace {

using wal::WriteAheadLog;

class RecoveryEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override { stm::init({.backend = "tl2"}); }

  std::string log_path() const { return dir_.file("wal.log"); }

  void write_raw(const std::string& bytes) const {
    std::ofstream out(log_path(), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::uint64_t file_size() const {
    return static_cast<std::uint64_t>(
        std::filesystem::file_size(log_path()));
  }

  io::TempDir dir_{"adtm-crashsim-edge"};
};

std::string put32(std::uint32_t v) {
  std::string out;
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  return out;
}

// A wire-format record exactly as the group commit writes it.
std::string raw_record(const std::string& payload) {
  return put32(static_cast<std::uint32_t>(payload.size())) +
         put32(wal::crc32(payload)) + payload;
}

TEST_F(RecoveryEdgeTest, MissingLogIsEmptyAndClean) {
  const auto r = WriteAheadLog::recover(dir_.file("never-created.log"));
  EXPECT_TRUE(r.records.empty());
  EXPECT_EQ(r.valid_bytes, 0u);
  EXPECT_TRUE(r.clean);
}

TEST_F(RecoveryEdgeTest, EmptyLogIsEmptyAndClean) {
  write_raw("");
  const auto r = WriteAheadLog::recover(log_path());
  EXPECT_TRUE(r.records.empty());
  EXPECT_EQ(r.valid_bytes, 0u);
  EXPECT_TRUE(r.clean);
  // Truncation of an already-clean log is a no-op.
  const auto t = WriteAheadLog::recover_and_truncate(log_path());
  EXPECT_TRUE(t.clean);
  EXPECT_EQ(file_size(), 0u);
}

TEST_F(RecoveryEdgeTest, LogEndingExactlyAtRecordBoundaryIsClean) {
  WriteAheadLog log(log_path());
  log.append("alpha");
  log.append("beta");
  log.append("gamma");
  log.flush();
  const auto r = WriteAheadLog::recover(log_path());
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_TRUE(r.clean);
  // clean means the scan consumed every byte: no slack after the last
  // record, no phantom truncation on the recover_and_truncate path.
  EXPECT_EQ(r.valid_bytes, file_size());
  const auto t = WriteAheadLog::recover_and_truncate(log_path());
  EXPECT_TRUE(t.clean);
  EXPECT_EQ(file_size(), r.valid_bytes);
}

TEST_F(RecoveryEdgeTest, CrcValidHeaderWithTruncatedPayloadIsTorn) {
  // The nastiest torn tail: the header (length + CRC) made it to disk
  // intact, but the payload behind it is short. The CRC in the header is
  // *correct* for the full payload — only the length check can reject it.
  const std::string full = "this-payload-never-fully-landed";
  const std::string intact = raw_record("intact");
  write_raw(intact + put32(static_cast<std::uint32_t>(full.size())) +
            put32(wal::crc32(full)) + full.substr(0, 5));
  const auto r = WriteAheadLog::recover(log_path());
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0], "intact");
  EXPECT_FALSE(r.clean);
  EXPECT_EQ(r.valid_bytes, intact.size());
  const auto t = WriteAheadLog::recover_and_truncate(log_path());
  EXPECT_EQ(file_size(), intact.size());
  EXPECT_TRUE(WriteAheadLog::recover(log_path()).clean);
}

TEST_F(RecoveryEdgeTest, TailShorterThanHeaderIsTorn) {
  write_raw(raw_record("whole") + "\x03\x00");
  const auto r = WriteAheadLog::recover(log_path());
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_FALSE(r.clean);
}

TEST_F(RecoveryEdgeTest, CorruptCrcCutsTheSuffixNotJustTheRecord) {
  // Prefix semantics: a mid-log corrupt record invalidates everything
  // after it — records beyond the cut cannot be trusted to be the ones
  // their LSNs claim.
  std::string bad = raw_record("corrupt-me");
  bad[bad.size() - 1] ^= 0x01;  // flip one payload bit; header CRC now lies
  write_raw(raw_record("first") + bad + raw_record("unreachable"));
  const auto r = WriteAheadLog::recover(log_path());
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0], "first");
  EXPECT_FALSE(r.clean);
  const auto t = WriteAheadLog::recover_and_truncate(log_path());
  EXPECT_EQ(t.records.size(), 1u);
  EXPECT_EQ(file_size(), raw_record("first").size());
}

TEST_F(RecoveryEdgeTest, DuplicateRecordsReplayOnce) {
  // A crash between the durable write and the oracle ack can make the
  // application re-issue an op after recovery; the log then carries the
  // same op id twice. Replay must fold duplicates, not double-apply.
  kvcache::RecoverableCache::Op op;
  op.id = "t0n7";
  op.kind = 'S';
  op.key = "k";
  op.value = "v1";
  const std::string once = kvcache::RecoverableCache::encode(op);
  op.value = "v2";  // the re-issued attempt may even differ in value
  const std::string twice = kvcache::RecoverableCache::encode(op);
  std::size_t duplicates = 0;
  std::size_t undecodable = 0;
  const auto folded = kvcache::RecoverableCache::replay(
      {once, twice, "garbage-no-pipes"}, &duplicates, &undecodable);
  EXPECT_EQ(duplicates, 1u);
  EXPECT_EQ(undecodable, 1u);
  ASSERT_EQ(folded.size(), 1u);
  // First write wins: the duplicate is the *same op*, so its first
  // durable appearance is the authoritative one.
  EXPECT_EQ(folded.at("k"), "v1");
}

TEST_F(RecoveryEdgeTest, ResumedMidBufferRetryWritesNoByteTwice) {
  // Group commit under a transient fault: a short write makes partial
  // progress, then EINTR fails the next call; the retry policy re-runs
  // the drain body, which must resume at the partial offset. Any
  // re-written prefix would corrupt the record stream.
  WriteAheadLog log(log_path());
  const std::string payload(64, 'r');
  faultsim::FaultScope scope;
  faultsim::engine().arm({.op = faultsim::Op::Write,
                          .fault = faultsim::Fault::short_write(5),
                          .skip = 0,
                          .count = 1});
  faultsim::engine().arm({.op = faultsim::Op::Write,
                          .fault = faultsim::Fault::error(EINTR),
                          .skip = 0,
                          .count = 1});
  log.append(payload);
  log.flush();
  EXPECT_FALSE(log.failed());
  const auto r = WriteAheadLog::recover(log_path());
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0], payload);
  EXPECT_TRUE(r.clean);
  EXPECT_EQ(r.valid_bytes, file_size());
}

TEST_F(RecoveryEdgeTest, PoisonedGroupCommitLeavesRecoverableLog) {
  WriteAheadLog log(log_path());
  log.append("survives");
  log.flush();
  // EIO is permanent: the policy must not retry it, the log poisons, and
  // every later operation raises instead of hanging a waiter.
  {
    faultsim::FaultScope scope;
    faultsim::engine().arm({.op = faultsim::Op::Write,
                            .fault = faultsim::Fault::error(EIO),
                            .skip = 0,
                            .count = 0});
    EXPECT_THROW(log.append("lost"), std::exception);
    EXPECT_TRUE(log.failed());
    EXPECT_THROW(log.append("also-refused"), std::runtime_error);
    EXPECT_THROW(log.flush(), std::runtime_error);
  }
  // Recovery path: the durable prefix is intact, and a fresh handle on
  // the same file accepts appends again.
  const auto r = WriteAheadLog::recover_and_truncate(log_path());
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0], "survives");
  WriteAheadLog reopened(log_path());
  reopened.append("after-reopen");
  reopened.flush();
  const auto r2 = WriteAheadLog::recover(log_path());
  ASSERT_EQ(r2.records.size(), 2u);
  EXPECT_EQ(r2.records[1], "after-reopen");
  EXPECT_TRUE(r2.clean);
}

}  // namespace
}  // namespace adtm::crashsim
