// crashsim harness integration: run real fork/kill/recover cases through
// run_case and check the verifier's verdicts, plus shape checks on the
// case matrices that CI enumerates.
#include "crashsim/harness.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "faultsim/crashpoint.hpp"
#include "io/temp_dir.hpp"
#include "stm/backend.hpp"

namespace adtm::crashsim {
namespace {

// A small workload keeps each forked phase around tens of milliseconds.
WorkloadOptions small_workload() {
  WorkloadOptions o;
  o.threads = 2;
  o.ops_per_thread = 32;
  return o;
}

std::string violations_text(const CaseResult& r) {
  std::string out;
  for (const auto& v : r.violations) out += v + "\n";
  for (const auto& p : r.phases) {
    out += "phase " + std::to_string(p.phase) + ": " +
           outcome_name(p.outcome) + "\n";
  }
  return out;
}

class CrashsimTest : public ::testing::Test {
 protected:
  io::TempDir dir_{"adtm-crashsim"};
};

TEST_F(CrashsimTest, WalCommitTornWriteSurvivesTorture) {
  TortureCase tc;
  tc.point = "wal.commit.write";
  tc.persist_bytes = faultsim::CrashArm::kPersistRandom;
  const CaseResult r = run_case(tc, dir_.file("case"), small_workload());
  EXPECT_TRUE(r.passed) << violations_text(r);
  ASSERT_EQ(r.phases.size(), 3u);
  EXPECT_EQ(r.phases[0].outcome, ChildOutcome::Crashed);
  EXPECT_EQ(r.phases[1].outcome, ChildOutcome::Crashed);
  EXPECT_EQ(r.phases[2].outcome, ChildOutcome::Completed);
}

TEST_F(CrashsimTest, RecoveryPathCrashSurvivesTorture) {
  // Phase 1 gets a torn-write setup arm so phase 2 actually enters the
  // truncation path where this point lives.
  TortureCase tc;
  tc.point = "wal.recover.post_truncate";
  const CaseResult r = run_case(tc, dir_.file("case"), small_workload());
  EXPECT_TRUE(r.passed) << violations_text(r);
}

TEST_F(CrashsimTest, SigkillFlavorSurvivesTorture) {
  TortureCase tc;
  tc.point = "durable.pre_fsync";
  tc.algo = "NOrec";
  tc.action = faultsim::CrashAction::Kill;
  // The checkpoint path reaches this point only twice in a 32-op
  // workload; a skip of 2 would let both through.
  tc.skip = 1;
  const CaseResult r = run_case(tc, dir_.file("case"), small_workload());
  EXPECT_TRUE(r.passed) << violations_text(r);
}

TEST_F(CrashsimTest, VerifyDirFlagsHandCorruptedWal) {
  // First produce a legitimate passing directory, then flip a byte in
  // the middle of the WAL: the re-run verifier must notice the damage
  // (recovered records no longer match any oracle, or the tail tears).
  TortureCase tc;
  tc.point = "wal.commit.write";
  const std::string dir = dir_.file("case");
  const CaseResult r = run_case(tc, dir, small_workload());
  ASSERT_TRUE(r.passed) << violations_text(r);
  EXPECT_TRUE(verify_dir(dir, 3, false).empty());

  const std::string wal = wal_path(dir);
  FILE* f = std::fopen(wal.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 40, SEEK_SET);
  std::fputc(0x7f, f);
  std::fclose(f);
  EXPECT_FALSE(verify_dir(dir, 3, false).empty());
}

TEST_F(CrashsimTest, QuickMatrixCoversEveryRegisteredPoint) {
  const auto cases = quick_matrix(1);
  for (const auto& desc : faultsim::crash_points()) {
    const bool covered =
        std::any_of(cases.begin(), cases.end(), [&](const TortureCase& tc) {
          return tc.point == desc.name;
        });
    EXPECT_TRUE(covered) << "quick matrix misses " << desc.name;
  }
  // Every write-path point gets a torn variant.
  for (const auto& desc : faultsim::crash_points()) {
    if (!desc.write_path) continue;
    const bool torn =
        std::any_of(cases.begin(), cases.end(), [&](const TortureCase& tc) {
          return tc.point == desc.name &&
                 tc.persist_bytes == faultsim::CrashArm::kPersistRandom;
        });
    EXPECT_TRUE(torn) << "no torn variant for " << desc.name;
  }
}

TEST_F(CrashsimTest, FullMatrixCoversEveryPointUnderEveryAlgorithm) {
  const auto cases = full_matrix(1);
  for (const auto& desc : faultsim::crash_points()) {
    for (std::size_t i = 0; i < stm::backend_registry().size(); ++i) {
      const std::string algo = stm::backend_registry().at(i)->name;
      const bool covered =
          std::any_of(cases.begin(), cases.end(), [&](const TortureCase& tc) {
            return tc.point == desc.name && tc.algo == algo;
          });
      EXPECT_TRUE(covered) << "full matrix misses " << desc.name << "/"
                           << algo;
    }
  }
  EXPECT_GT(cases.size(), quick_matrix(1).size());
}

}  // namespace
}  // namespace adtm::crashsim
