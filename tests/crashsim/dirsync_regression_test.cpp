// The regression crashmat exists to catch: recover_and_truncate used to
// cut the torn tail without making the truncation durable (no file/dir
// fsync barrier). A crash in that window resurrects the garbage tail —
// under records appended after recovery, severing them from the valid
// prefix. The harness re-introduces the bug behind a testing knob and
// the verifier must catch it; with the barrier in place the same
// schedule is clean.
#include <gtest/gtest.h>

#include <string>

#include "crashsim/harness.hpp"
#include "io/temp_dir.hpp"

namespace adtm::crashsim {
namespace {

WorkloadOptions small_workload() {
  WorkloadOptions o;
  o.threads = 2;
  o.ops_per_thread = 32;
  return o;
}

TEST(DirsyncRegressionTest, VerifierCatchesLostTruncation) {
  io::TempDir dir{"adtm-dirsync"};
  TortureCase tc;
  tc.point = "wal.commit.write";
  tc.demo_dirsync_bug = true;
  const CaseResult broken = run_case(tc, dir.file("buggy"), small_workload());
  ASSERT_FALSE(broken.violations.empty())
      << "pre-fix behavior went undetected";
  bool names_lost_truncation = false;
  for (const auto& v : broken.violations) {
    if (v.find("truncation was lost") != std::string::npos) {
      names_lost_truncation = true;
    }
  }
  EXPECT_TRUE(names_lost_truncation) << broken.violations.front();
}

TEST(DirsyncRegressionTest, BarrierMakesTheSameScheduleClean) {
  io::TempDir dir{"adtm-dirsync"};
  TortureCase tc;
  tc.point = "wal.commit.write";
  tc.demo_dirsync_bug = false;
  const CaseResult fixed = run_case(tc, dir.file("fixed"), small_workload());
  EXPECT_TRUE(fixed.passed);
  EXPECT_TRUE(fixed.violations.empty())
      << fixed.violations.front();
}

}  // namespace
}  // namespace adtm::crashsim
