#include "fdpool/async_io.hpp"

#include <fcntl.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <system_error>

#include "faultsim/faultsim.hpp"
#include "io/posix_file.hpp"
#include "io/temp_dir.hpp"

namespace adtm::fdpool {
namespace {

class AsyncIOTest : public ::testing::Test {
 protected:
  void TearDown() override { faultsim::engine().disarm(); }

  io::TempDir dir_{"adtm-aio"};
};

TEST_F(AsyncIOTest, SingleWriteLands) {
  io::PosixFile f = io::PosixFile::open_rw(dir_.file("a"));
  AsyncIOEngine engine;
  engine.submit_write(f.fd(), 0, "hello");
  engine.drain();
  EXPECT_EQ(io::read_file(dir_.file("a")), "hello");
  EXPECT_EQ(engine.completed(), 1u);
  EXPECT_EQ(engine.failed(), 0u);
}

TEST_F(AsyncIOTest, PositionalWritesDoNotOverlap) {
  io::PosixFile f = io::PosixFile::open_rw(dir_.file("b"));
  AsyncIOEngine engine(2);
  // Reserve offsets 0,5,10,... and write out of submission order.
  for (int i = 9; i >= 0; --i) {
    std::string chunk = std::to_string(i) + "...;";
    chunk.resize(5, '.');
    engine.submit_write(f.fd(), static_cast<std::uint64_t>(i) * 5,
                        std::move(chunk));
  }
  engine.drain();
  const std::string data = io::read_file(dir_.file("b"));
  ASSERT_EQ(data.size(), 50u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(data.substr(static_cast<std::size_t>(i) * 5, 1),
              std::to_string(i));
  }
}

TEST_F(AsyncIOTest, CompletionCallbackRunsWithoutError) {
  io::PosixFile f = io::PosixFile::open_rw(dir_.file("c"));
  AsyncIOEngine engine;
  std::atomic<int> called{0};
  std::atomic<bool> had_error{false};
  engine.submit_write(f.fd(), 0, "x", [&](std::error_code ec) {
    called.fetch_add(1);
    if (ec) had_error.store(true);
  });
  engine.drain();
  EXPECT_EQ(called.load(), 1);
  EXPECT_FALSE(had_error.load());
}

TEST_F(AsyncIOTest, ManyWritesAllComplete) {
  io::PosixFile f = io::PosixFile::open_rw(dir_.file("d"));
  AsyncIOEngine engine(3);
  constexpr int kWrites = 500;
  std::atomic<int> done{0};
  for (int i = 0; i < kWrites; ++i) {
    engine.submit_write(f.fd(), static_cast<std::uint64_t>(i), "z",
                        [&](std::error_code) { done.fetch_add(1); });
  }
  engine.drain();
  EXPECT_EQ(done.load(), kWrites);
  EXPECT_EQ(engine.completed(), static_cast<std::uint64_t>(kWrites));
  EXPECT_EQ(f.size(), static_cast<std::uint64_t>(kWrites));
}

TEST_F(AsyncIOTest, DestructorDrainsGracefully) {
  io::PosixFile f = io::PosixFile::open_rw(dir_.file("e"));
  {
    AsyncIOEngine engine;
    for (int i = 0; i < 50; ++i) {
      engine.submit_write(f.fd(), static_cast<std::uint64_t>(i), "q");
    }
    // No explicit drain: the destructor must not lose queued work or hang.
  }
  EXPECT_EQ(f.size(), 50u);
}

// A permanently failing write (read-only descriptor -> EBADF) must be
// reported to the completion callback, not dropped on the worker thread.
TEST_F(AsyncIOTest, PermanentErrorPropagatesToCallback) {
  io::write_file(dir_.file("ro"), std::string("seed"));
  io::PosixFile f = io::PosixFile::open_read(dir_.file("ro"));
  AsyncIOEngine engine;
  std::atomic<int> called{0};
  std::error_code seen;
  engine.submit_write(f.fd(), 0, "nope", [&](std::error_code ec) {
    seen = ec;
    called.fetch_add(1);
  });
  engine.drain();  // must not hang on the failed request
  EXPECT_EQ(called.load(), 1);
  EXPECT_TRUE(static_cast<bool>(seen));
  EXPECT_EQ(seen.value(), EBADF);
  EXPECT_EQ(engine.failed(), 1u);
  EXPECT_EQ(engine.completed(), 1u);
}

// Injected transient faults (EINTR) are retried by the worker and the
// write still lands, with a clean error_code.
TEST_F(AsyncIOTest, TransientInjectedFaultsAreRetried) {
  io::PosixFile f = io::PosixFile::open_rw(dir_.file("t"));
  AsyncIOEngine engine;
  faultsim::engine().arm({.op = faultsim::Op::Pwrite,
                          .fault = faultsim::Fault::error(EINTR),
                          .skip = 0,
                          .count = 3,
                          .fd = f.fd()});
  std::error_code seen = std::make_error_code(std::errc::io_error);
  engine.submit_write(f.fd(), 0, "retry-me",
                      [&](std::error_code ec) { seen = ec; });
  engine.drain();
  EXPECT_FALSE(static_cast<bool>(seen));
  EXPECT_EQ(io::read_file(dir_.file("t")), "retry-me");
  EXPECT_EQ(faultsim::engine().injected(faultsim::Op::Pwrite), 3u);
  EXPECT_EQ(engine.failed(), 0u);
}

// An unlimited injected error exhausts the bounded retry budget and then
// escalates to the callback — the engine never hangs.
TEST_F(AsyncIOTest, ExhaustedRetriesEscalateToCallback) {
  io::PosixFile f = io::PosixFile::open_rw(dir_.file("x"));
  AsyncIOEngine engine;
  faultsim::engine().arm({.op = faultsim::Op::Pwrite,
                          .fault = faultsim::Fault::error(ENOSPC),
                          .skip = 0,
                          .count = 0,  // forever
                          .fd = f.fd()});
  std::error_code seen;
  engine.submit_write(f.fd(), 0, "doomed",
                      [&](std::error_code ec) { seen = ec; });
  engine.drain();
  EXPECT_EQ(seen.value(), ENOSPC);
  EXPECT_EQ(engine.failed(), 1u);
}

}  // namespace
}  // namespace adtm::fdpool
