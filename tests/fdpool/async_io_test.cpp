#include "fdpool/async_io.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "io/posix_file.hpp"
#include "io/temp_dir.hpp"

namespace adtm::fdpool {
namespace {

class AsyncIOTest : public ::testing::Test {
 protected:
  io::TempDir dir_{"adtm-aio"};
};

TEST_F(AsyncIOTest, SingleWriteLands) {
  io::PosixFile f = io::PosixFile::open_rw(dir_.file("a"));
  AsyncIOEngine engine;
  engine.submit_write(f.fd(), 0, "hello");
  engine.drain();
  EXPECT_EQ(io::read_file(dir_.file("a")), "hello");
  EXPECT_EQ(engine.completed(), 1u);
}

TEST_F(AsyncIOTest, PositionalWritesDoNotOverlap) {
  io::PosixFile f = io::PosixFile::open_rw(dir_.file("b"));
  AsyncIOEngine engine(2);
  // Reserve offsets 0,5,10,... and write out of submission order.
  for (int i = 9; i >= 0; --i) {
    std::string chunk = std::to_string(i) + "...;";
    chunk.resize(5, '.');
    engine.submit_write(f.fd(), static_cast<std::uint64_t>(i) * 5,
                        std::move(chunk));
  }
  engine.drain();
  const std::string data = io::read_file(dir_.file("b"));
  ASSERT_EQ(data.size(), 50u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(data.substr(static_cast<std::size_t>(i) * 5, 1),
              std::to_string(i));
  }
}

TEST_F(AsyncIOTest, CompletionCallbackRuns) {
  io::PosixFile f = io::PosixFile::open_rw(dir_.file("c"));
  AsyncIOEngine engine;
  std::atomic<int> called{0};
  engine.submit_write(f.fd(), 0, "x", [&] { called.fetch_add(1); });
  engine.drain();
  EXPECT_EQ(called.load(), 1);
}

TEST_F(AsyncIOTest, ManyWritesAllComplete) {
  io::PosixFile f = io::PosixFile::open_rw(dir_.file("d"));
  AsyncIOEngine engine(3);
  constexpr int kWrites = 500;
  std::atomic<int> done{0};
  for (int i = 0; i < kWrites; ++i) {
    engine.submit_write(f.fd(), static_cast<std::uint64_t>(i), "z",
                        [&] { done.fetch_add(1); });
  }
  engine.drain();
  EXPECT_EQ(done.load(), kWrites);
  EXPECT_EQ(engine.completed(), static_cast<std::uint64_t>(kWrites));
  EXPECT_EQ(f.size(), static_cast<std::uint64_t>(kWrites));
}

TEST_F(AsyncIOTest, DestructorDrainsGracefully) {
  io::PosixFile f = io::PosixFile::open_rw(dir_.file("e"));
  {
    AsyncIOEngine engine;
    for (int i = 0; i < 50; ++i) {
      engine.submit_write(f.fd(), static_cast<std::uint64_t>(i), "q");
    }
    // No explicit drain: the destructor must not lose queued work or hang.
  }
  EXPECT_EQ(f.size(), 50u);
}

}  // namespace
}  // namespace adtm::fdpool
