// FilePool: the InnoDB-style file pool of paper §5.3 (Listing 5).
#include "fdpool/fd_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "io/temp_dir.hpp"
#include "support/algo_param.hpp"

namespace adtm::fdpool {
namespace {

using test::AlgoTest;

class FdPoolTest : public AlgoTest {
 protected:
  io::TempDir dir_{"adtm-fdpool"};
  AsyncIOEngine engine_{2};
};

TEST_P(FdPoolTest, OpensNodeOnFirstUse) {
  FilePool pool(dir_.path(), 4, engine_);
  const std::size_t n = pool.add_node("n0");
  EXPECT_FALSE(pool.node_open_direct(n));
  stm::atomic([&](stm::Tx& tx) { pool.prepare_io(tx, n); });
  EXPECT_TRUE(pool.node_open_direct(n));
  EXPECT_EQ(pool.open_count_direct(), 1u);
}

TEST_P(FdPoolTest, AppendWritesAtReservedOffsets) {
  FilePool pool(dir_.path(), 4, engine_);
  const std::size_t n = pool.add_node("n0");
  EXPECT_EQ(pool.append_async(n, "aaaa"), 0u);
  EXPECT_EQ(pool.append_async(n, "bb"), 4u);
  EXPECT_EQ(pool.append_async(n, "cccc"), 6u);
  pool.drain();
  EXPECT_EQ(io::read_file(pool.node_path(n)), "aaaabbcccc");
  EXPECT_EQ(pool.node_size_direct(n), 10u);
  EXPECT_EQ(pool.node_pending_direct(n), 0u);
}

TEST_P(FdPoolTest, EvictsLruWhenAtCapacity) {
  FilePool pool(dir_.path(), 2, engine_);
  const std::size_t a = pool.add_node("a");
  const std::size_t b = pool.add_node("b");
  const std::size_t c = pool.add_node("c");

  stm::atomic([&](stm::Tx& tx) { pool.prepare_io(tx, a); });
  stm::atomic([&](stm::Tx& tx) { pool.prepare_io(tx, b); });
  EXPECT_EQ(pool.open_count_direct(), 2u);

  // Opening c must evict a (the least recently used).
  stm::atomic([&](stm::Tx& tx) { pool.prepare_io(tx, c); });
  EXPECT_EQ(pool.open_count_direct(), 2u);
  EXPECT_FALSE(pool.node_open_direct(a));
  EXPECT_TRUE(pool.node_open_direct(b));
  EXPECT_TRUE(pool.node_open_direct(c));
}

TEST_P(FdPoolTest, TouchRefreshesLru) {
  FilePool pool(dir_.path(), 2, engine_);
  const std::size_t a = pool.add_node("a");
  const std::size_t b = pool.add_node("b");
  const std::size_t c = pool.add_node("c");

  stm::atomic([&](stm::Tx& tx) { pool.prepare_io(tx, a); });
  stm::atomic([&](stm::Tx& tx) { pool.prepare_io(tx, b); });
  stm::atomic([&](stm::Tx& tx) { pool.prepare_io(tx, a); });  // refresh a

  stm::atomic([&](stm::Tx& tx) { pool.prepare_io(tx, c); });
  EXPECT_TRUE(pool.node_open_direct(a));
  EXPECT_FALSE(pool.node_open_direct(b));  // b was LRU
  EXPECT_TRUE(pool.node_open_direct(c));
}

TEST_P(FdPoolTest, MaxOpenInvariantHoldsUnderChurn) {
  constexpr std::size_t kMaxOpen = 3;
  FilePool pool(dir_.path(), kMaxOpen, engine_);
  constexpr std::size_t kNodes = 8;
  for (std::size_t i = 0; i < kNodes; ++i) {
    pool.add_node("n" + std::to_string(i));
  }
  constexpr int kThreads = 4;
  constexpr int kPerThread = 120;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng{static_cast<std::uint64_t>(t) + 17};
      for (int i = 0; i < kPerThread; ++i) {
        const std::size_t n = rng.next_below(kNodes);
        pool.append_async(n, "rec" + std::to_string(t) + "." +
                                 std::to_string(i) + ";");
      }
    });
  }
  for (auto& t : threads) t.join();
  pool.drain();

  EXPECT_LE(pool.open_count_direct(), kMaxOpen);
  std::size_t open = 0;
  std::uint64_t total_bytes = 0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    open += pool.node_open_direct(i);
    EXPECT_EQ(pool.node_pending_direct(i), 0u);
    // Every reserved byte was written: logical size == physical size.
    const std::string data = io::read_file(pool.node_path(i));
    EXPECT_EQ(data.size(), pool.node_size_direct(i));
    total_bytes += data.size();
    // No torn records: each ends with ';' and none contains a NUL (which
    // would indicate a hole from a lost write).
    if (!data.empty()) EXPECT_EQ(data.back(), ';');
    EXPECT_EQ(data.find('\0'), std::string::npos);
  }
  EXPECT_EQ(open, pool.open_count_direct());
  EXPECT_GT(total_bytes, 0u);
}

TEST_P(FdPoolTest, AppendsToManyNodesDoNotCorrupt) {
  FilePool pool(dir_.path(), 2, engine_);
  const std::size_t a = pool.add_node("a");
  const std::size_t b = pool.add_node("b");
  const std::size_t c = pool.add_node("c");
  for (int i = 0; i < 30; ++i) {
    pool.append_async(a, "A");
    pool.append_async(b, "B");
    pool.append_async(c, "C");
  }
  pool.drain();
  EXPECT_EQ(io::read_file(pool.node_path(a)), std::string(30, 'A'));
  EXPECT_EQ(io::read_file(pool.node_path(b)), std::string(30, 'B'));
  EXPECT_EQ(io::read_file(pool.node_path(c)), std::string(30, 'C'));
}

TEST_P(FdPoolTest, OpenInitialOpensUpToCapacity) {
  FilePool pool(dir_.path(), 2, engine_);
  for (int i = 0; i < 5; ++i) pool.add_node("n" + std::to_string(i));
  pool.open_initial();
  EXPECT_EQ(pool.open_count_direct(), 2u);
  pool.open_initial();  // idempotent at capacity
  EXPECT_EQ(pool.open_count_direct(), 2u);
}

TEST_P(FdPoolTest, CloseAllClosesEverything) {
  FilePool pool(dir_.path(), 4, engine_);
  for (int i = 0; i < 4; ++i) pool.add_node("n" + std::to_string(i));
  pool.open_initial();
  EXPECT_EQ(pool.open_count_direct(), 4u);
  pool.close_all();
  EXPECT_EQ(pool.open_count_direct(), 0u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FALSE(pool.node_open_direct(i));
  // The pool is still usable afterwards.
  pool.append_async(0, "post-close append");
  pool.drain();
  EXPECT_EQ(io::read_file(pool.node_path(0)), "post-close append");
}

TEST_P(FdPoolTest, CloseAllWaitsForInFlightIo) {
  FilePool pool(dir_.path(), 2, engine_);
  const std::size_t n = pool.add_node("busy");
  // Generate a burst of async appends, then immediately close_all: the
  // close must wait for the pending writes (retry on the counters), and
  // every byte must land.
  std::string expected;
  for (int i = 0; i < 40; ++i) {
    const std::string rec = "rec" + std::to_string(i) + ";";
    expected += rec;
    pool.append_async(n, rec);
  }
  pool.close_all();
  EXPECT_EQ(pool.open_count_direct(), 0u);
  EXPECT_EQ(pool.node_pending_direct(n), 0u);
  EXPECT_EQ(io::read_file(pool.node_path(n)), expected);
}

TEST_P(FdPoolTest, BadNodeIdThrows) {
  FilePool pool(dir_.path(), 2, engine_);
  EXPECT_THROW(pool.append_async(0, "x"), std::out_of_range);
  EXPECT_THROW(
      stm::atomic([&](stm::Tx& tx) { pool.prepare_io(tx, 3); }),
      std::out_of_range);
}

TEST_P(FdPoolTest, ZeroCapacityRejected) {
  EXPECT_THROW(FilePool(dir_.path(), 0, engine_), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, FdPoolTest, test::AllAlgos(),
                         test::algo_param_name);

}  // namespace
}  // namespace adtm::fdpool
