#!/usr/bin/env sh
# Fails when a deprecated `_until`/`_for` timed-wait spelling is used
# outside the files that are allowed to mention them:
#   - the forwarder definitions themselves (kept for source compat), and
#   - the equivalence test that proves forwarders match the Deadline forms.
# New code must take adtm::Deadline instead. std::condition_variable
# waits (`wait_for(lk, ...)` / `wait_until(lk, ...)`) are not ours and
# are excluded by their lock-first-argument call shape.
#
# Run from the repository root (ctest does this via WORKING_DIRECTORY).
set -u

PATTERN='\b(acquire_until|acquire_for|subscribe_until|subscribe_for|retry_until|retry_for|wait_until|wait_for)[[:space:]]*\('

ALLOWLIST='^(src/defer/txlock\.hpp|src/defer/txcondvar\.hpp|src/stm/api\.hpp|tests/common/deadline_test\.cpp):'

hits=$(grep -rnE "$PATTERN" src tests bench examples \
         --include='*.hpp' --include='*.cpp' 2>/dev/null \
       | grep -v '(lk' \
       | grep -vE "$ALLOWLIST")

if [ -n "$hits" ]; then
  echo "lint_deadline: deprecated _until/_for timed-wait spellings found." >&2
  echo "Use adtm::Deadline overloads instead (see src/common/deadline.hpp):" >&2
  echo "$hits" >&2
  exit 1
fi

echo "lint_deadline: OK (no deprecated _until/_for uses outside forwarders)"
exit 0
