#!/usr/bin/env sh
# Run clang-tidy (profile: repo-root .clang-tidy) over the first-party
# sources using the compile_commands.json the build exports.
#
#   tools/run_clang_tidy.sh [build-dir]
#
# Exit codes: 0 clean, 1 findings, 77 tool or compdb unavailable (ctest
# maps 77 to SKIP via SKIP_RETURN_CODE, so environments without
# clang-tidy — like the pinned CI container — skip instead of fail).
#
# Run from the repository root (ctest does this via WORKING_DIRECTORY).
set -u

BUILD_DIR="${1:-build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not installed; skipping" >&2
  exit 77
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json not found" >&2
  echo "(configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON — the default)" >&2
  exit 77
fi

# First-party translation units only; tests inherit the header checks via
# HeaderFilterRegex without paying a full per-test run. The txsafety
# analyzer is first-party tooling and is held to the same profile.
FILES=$(find src tools/txsafety -name '*.cpp' | sort)

fail=0
for f in $FILES; do
  clang-tidy -p "$BUILD_DIR" --quiet "$f" || fail=1
done

if [ "$fail" -ne 0 ]; then
  echo "run_clang_tidy: findings reported above" >&2
  exit 1
fi
echo "run_clang_tidy: OK ($(echo "$FILES" | wc -l) files clean)"
exit 0
