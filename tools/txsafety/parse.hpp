// txsafety parse layer: function extraction, lambda/region discovery and
// call-site collection over the lexed token stream.
//
// The extractor is a scope-stack walk, not a real C++ parser: it
// classifies every top-level `{` as namespace / class / function / other
// by looking back at the tokens that introduced it. That is enough to
// recover, for each function definition: its (qualified) name, parameter
// list, whether it takes an `stm::Tx&` parameter (and the parameter's
// name), and the token range of its body — the inputs every check needs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace txsafety {

struct Fn {
  int file = -1;           // index into Corpus::files
  std::string name;        // unqualified name ("set", "append", ...)
  std::string cls;         // enclosing class or A:: qualifier, "" if free
  int line = 0;            // line of the name token
  std::size_t params_open = 0, params_close = 0;  // '(' ... ')'
  std::size_t body_open = 0, body_close = 0;      // '{' ... '}'
  int min_args = 0;        // arity window for overload filtering
  int max_args = 0;        // -1 == variadic
  std::string tx_param;    // name of the stm::Tx& parameter, "" if none
  bool ctor_dtor = false;
};

// A function call site inside some region.
struct CallSite {
  std::size_t tok = 0;     // index of the callee name token
  int line = 0;
  std::string name;        // unqualified callee name
  std::string qual;        // textual qualifier before the name ("" if none)
  bool receiver = false;   // obj.name(...) / obj->name(...)
  int argc = 0;            // top-level argument count
};

// Extract all function definitions in `f` (file index `file_idx`).
std::vector<Fn> extract_functions(const SourceFile& f, int file_idx);

// If toks[i] is a '[' that starts a lambda introducer, return true and set
// body_open/body_close to the lambda's brace range ((0,0) if the lambda is
// malformed/bodiless). capture_close is the matching ']'.
bool lambda_at(const SourceFile& f, std::size_t i, std::size_t& capture_close,
               std::size_t& body_open, std::size_t& body_close);

// Split the argument list of a call whose '(' is at `open` into top-level
// (begin, end) token ranges. Empty vector for `()`.
std::vector<std::pair<std::size_t, std::size_t>> split_args(
    const SourceFile& f, std::size_t open);

// If argument range [b, e) starts with a lambda, return its body range.
bool arg_is_lambda(const SourceFile& f, std::size_t b, std::size_t e,
                   std::size_t& body_open, std::size_t& body_close);

// Collect call sites in token range [begin, end), skipping any of the
// `excluded` subranges (pairs of token indices).
std::vector<CallSite> collect_calls(
    const SourceFile& f, std::size_t begin, std::size_t end,
    const std::vector<std::pair<std::size_t, std::size_t>>& excluded);

// True if identifier `name` is declared as a local variable somewhere in
// token range [begin, end) (coarse: `Type name =`, `Type name{`,
// `Type name;`, `Type name(` shapes).
bool declared_in(const SourceFile& f, const std::string& name,
                 std::size_t begin, std::size_t end);

// First parameter name of the lambda whose body starts at body_open
// (looks back to the parameter list); "" if none.
std::string lambda_first_param(const SourceFile& f, std::size_t body_open);

}  // namespace txsafety
