// txsafety lexer: turns a C++ translation unit into a token stream the
// region tracker and checks can reason about without regex fragility.
//
// Design constraints (see DESIGN.md "Static analysis"):
//  * comments, string/char literals (incl. raw strings) and preprocessor
//    directives never produce code tokens — a check table entry such as
//    "load_direct" can appear in a diagnostic string without tripping it;
//  * suppression comments (`txsafety:allow(check)` and the legacy
//    `adtmlint:allow check`) are harvested while lexing, so every check
//    shares one suppression mechanism;
//  * bracket matching is precomputed: match[i] is the index of the token
//    closing the (/{/[ opened at i (and vice versa), -1 when unmatched.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace txsafety {

struct Token {
  enum class Kind { Ident, Number, String, CharLit, Punct, End };
  Kind kind;
  std::string text;
  int line;
};

struct SourceFile {
  std::string path;         // repo-relative, '/'-separated
  std::vector<Token> toks;  // ends with a Kind::End sentinel
  std::vector<int> match;   // bracket partner per token, -1 if none

  // line -> set of check names allowed on that line. A comment-only line
  // extends its allowance to the next line that carries code, so a
  // suppression can sit above a long expression.
  std::unordered_map<int, std::unordered_set<std::string>> allows;
  std::unordered_set<int> code_lines;  // lines that emitted a token

  bool allowed(int line, const std::string& check) const;
};

// Lex C++ source text. Never throws on malformed input: unterminated
// literals run to end of line/file, unmatched brackets get match == -1.
SourceFile lex(std::string path, const std::string& text);

// True if `t` is one of C++'s statement/expression keywords that can be
// followed by '(' without being a call (if, for, while, ...).
bool is_control_keyword(const std::string& t);

}  // namespace txsafety
