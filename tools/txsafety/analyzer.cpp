#include "analyzer.hpp"

#include <algorithm>
#include <initializer_list>

namespace txsafety {

namespace {

bool is_p(const Token& t, const char* s) {
  return t.kind == Token::Kind::Punct && t.text == s;
}
bool is_id(const Token& t) { return t.kind == Token::Kind::Ident; }
bool id_is(const Token& t, const char* s) {
  return t.kind == Token::Kind::Ident && t.text == s;
}

bool has_prefix(const std::string& s, const char* p) {
  const std::size_t n = std::char_traits<char>::length(p);
  return s.size() >= n && s.compare(0, n, p) == 0;
}

bool under_any(const std::string& path,
               std::initializer_list<const char*> dirs) {
  for (const char* d : dirs)
    if (has_prefix(path, d)) return true;
  return false;
}

bool name_in(const std::string& s, std::initializer_list<const char*> names) {
  for (const char* n : names)
    if (s == n) return true;
  return false;
}

// Inclusive skip ranges, matching collect_calls.
std::size_t skip_to(
    const std::vector<std::pair<std::size_t, std::size_t>>& excl,
    std::size_t i) {
  for (const auto& r : excl)
    if (i >= r.first && i <= r.second) return r.second;
  return 0;
}

// Base identifier of a receiver chain: `a->b[i].name(...)` -> "a".
std::string receiver_base(const SourceFile& f, std::size_t call_tok) {
  std::string base;
  std::size_t k = call_tok;
  while (k >= 2 && (is_p(f.toks[k - 1], ".") || is_p(f.toks[k - 1], "->") ||
                    is_p(f.toks[k - 1], "::"))) {
    std::size_t j = k - 2;
    while ((is_p(f.toks[j], "]") || is_p(f.toks[j], ")")) &&
           f.match[j] >= 0 && static_cast<std::size_t>(f.match[j]) < j &&
           f.match[j] > 0)
      j = static_cast<std::size_t>(f.match[j]) - 1;
    if (!is_id(f.toks[j])) break;
    base = f.toks[j].text;
    k = j;
    if (k < 2) break;
  }
  return base;
}

// True when the call's first argument is exactly the identifier `tx`.
bool first_arg_is(const SourceFile& f, std::size_t call_tok,
                  const std::string& tx) {
  if (tx.empty()) return false;
  const auto args = split_args(f, call_tok + 1);
  if (args.empty() || args[0].first >= args[0].second) return false;
  return id_is(f.toks[args[0].first], tx.c_str());
}

std::string qname(const Fn& fn) {
  return fn.cls.empty() ? fn.name : fn.cls + "::" + fn.name;
}

}  // namespace

void Corpus::add(SourceFile f) { files.push_back(std::move(f)); }

void Corpus::index() {
  fns.clear();
  fns_by_name.clear();
  for (std::size_t i = 0; i < files.size(); ++i)
    for (auto& fn : extract_functions(files[i], static_cast<int>(i)))
      fns.push_back(std::move(fn));
  for (std::size_t i = 0; i < fns.size(); ++i)
    fns_by_name[fns[i].name].push_back(static_cast<int>(i));
}

Analyzer::Analyzer(Corpus corpus) : corpus_(std::move(corpus)) {}

const std::vector<CheckInfo>& Analyzer::checks() {
  static const std::vector<CheckInfo> kChecks = {
      {"irrevocable-call-in-tx", nullptr,
       "no irrevocable operation reachable from transactional code unless "
       "deferred (atomic_defer) or waived (become_irrevocable)"},
      {"defer-ordering", nullptr,
       "ordered deferral registrations must precede the transaction's "
       "first tvar write in the same region"},
      {"epilogue-purity", nullptr,
       "deferred lambdas must not re-enter stm::atomic, register new "
       "deferrals, or use the transactional handle"},
      {"ref-capture-into-defer", "defer-capture",
       "no [&] and no by-reference capture of region-local variables in "
       "lambdas passed to atomic_defer"},
      {"raw-tvar-access", nullptr,
       "load_direct/store_direct only in init/teardown, *_direct helpers, "
       "or under tmsan::ScopedRawIgnore"},
      {"deadline", nullptr,
       "blocking defer APIs must use the *_until/*_for deadline variants "
       "deliberately (legacy adtmlint check)"},
      {"tx-region", nullptr,
       "no sleeps or OS mutexes lexically inside stm::atomic bodies "
       "(legacy adtmlint check)"},
      {"env-config", nullptr,
       "ADTM_* env vars only read through common/env.cpp (legacy)"},
      {"algo-enum", nullptr,
       "stm::Algo only referenced inside src/stm/ (legacy)"},
  };
  return kChecks;
}

std::string Analyzer::canonical(const std::string& name) {
  for (const auto& c : checks()) {
    if (name == c.name) return c.name;
    if (c.alias && name == c.alias) return c.name;
  }
  return "";
}

bool Analyzer::in_scope(const std::string& check,
                        const std::string& path) const {
  if (path.find("tests/analysis/fixtures/") != std::string::npos) return false;
  if (check == "deadline")
    return under_any(path, {"src/", "tests/", "bench/", "examples/"});
  if (check == "algo-enum")
    return under_any(path, {"src/", "tests/", "bench/", "examples/",
                            "tools/"});
  if (check == "env-config" || check == "raw-tvar-access")
    return under_any(path, {"src/", "examples/"});
  return under_any(path, {"src/", "bench/", "examples/"});
}

bool Analyzer::machinery(const std::string& path) {
  if (under_any(path, {"src/stm/", "src/tmsan/", "src/liveness/", "src/obs/",
                       "src/health/", "src/common/", "src/faultsim/",
                       "src/fdpool/"}))
    return true;
  return name_in(path,
                 {"src/adtm.hpp", "src/defer/atomic_defer.hpp",
                  "src/defer/atomic_defer.cpp", "src/defer/txlock.hpp",
                  "src/defer/txlock.cpp", "src/defer/txcondvar.hpp",
                  "src/defer/txcondvar.cpp", "src/defer/failure_policy.hpp",
                  "src/defer/failure_policy.cpp", "src/defer/deferrable.hpp"});
}

std::vector<TxRegion> Analyzer::tx_regions(const std::string& check,
                                           bool scoped) const {
  std::vector<TxRegion> out;
  for (std::size_t fi = 0; fi < corpus_.files.size(); ++fi) {
    const SourceFile& f = corpus_.files[fi];
    if (scoped && !in_scope(check, f.path)) continue;
    if (scoped && machinery(f.path)) continue;

    // Bodies of functions taking stm::Tx& (skipped for the legacy tx-region
    // check, which by definition covers only stm::atomic bodies).
    if (check != "tx-region") {
      for (std::size_t k = 0; k < corpus_.fns.size(); ++k) {
        const Fn& fn = corpus_.fns[k];
        if (fn.file != static_cast<int>(fi) || fn.tx_param.empty() ||
            fn.body_open == 0)
          continue;
        TxRegion r;
        r.file = static_cast<int>(fi);
        r.begin = fn.body_open + 1;
        r.end = fn.body_close;
        r.tx = fn.tx_param;
        r.desc = qname(fn);
        r.line = fn.line;
        r.fn = static_cast<int>(k);
        out.push_back(std::move(r));
      }
    }

    // Bodies of lambdas passed to stm::atomic / atomic_nested.
    const auto& T = f.toks;
    for (std::size_t i = 0; i + 1 < T.size(); ++i) {
      if (!is_id(T[i]) ||
          !(T[i].text == "atomic" || T[i].text == "atomic_nested"))
        continue;
      if (!is_p(T[i + 1], "(")) continue;
      if (i > 0 && (is_p(T[i - 1], ".") || is_p(T[i - 1], "->"))) continue;
      const auto args = split_args(f, i + 1);
      for (const auto& a : args) {
        std::size_t bo = 0, bc = 0;
        if (!arg_is_lambda(f, a.first, a.second, bo, bc)) continue;
        TxRegion r;
        r.file = static_cast<int>(fi);
        r.begin = bo + 1;
        r.end = bc;
        r.tx = lambda_first_param(f, bo);
        if (r.tx.empty() && !args.empty() &&
            args[0].second == args[0].first + 1 && is_id(T[args[0].first]))
          r.tx = T[args[0].first].text;  // atomic_nested(tx, [&]{...})
        r.desc = "stm::atomic at line " + std::to_string(T[i].line);
        r.line = T[i].line;
        out.push_back(std::move(r));
        break;
      }
    }
  }
  return out;
}

std::vector<std::pair<std::size_t, std::size_t>> Analyzer::epilogue_ranges(
    const SourceFile& f, std::size_t begin, std::size_t end) const {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  const auto& T = f.toks;
  for (std::size_t i = begin; i < end && i + 1 < T.size(); ++i) {
    if (!is_id(T[i]) || !is_p(T[i + 1], "(")) continue;
    const bool recv =
        i > 0 && (is_p(T[i - 1], ".") || is_p(T[i - 1], "->"));
    std::size_t argidx = static_cast<std::size_t>(-1);
    if (T[i].text == "atomic_defer" && !recv)
      argidx = 1;
    else if ((T[i].text == "on_commit" || T[i].text == "on_abort") && recv)
      argidx = 0;
    if (argidx == static_cast<std::size_t>(-1)) continue;
    const auto args = split_args(f, i + 1);
    if (args.size() <= argidx) continue;
    std::size_t bo = 0, bc = 0;
    if (arg_is_lambda(f, args[argidx].first, args[argidx].second, bo, bc))
      out.emplace_back(args[argidx].first, bc);
  }
  return out;
}

std::vector<int> Analyzer::resolve(const CallSite& cs) const {
  auto it = corpus_.fns_by_name.find(cs.name);
  if (it == corpus_.fns_by_name.end()) return {};
  std::vector<int> cand;
  for (int k : it->second) {
    const Fn& fn = corpus_.fns[k];
    // Generous arity window: comma counts overcount at both ends when
    // template arguments are involved.
    const bool arity_ok = cs.argc + 1 >= fn.min_args &&
                          (fn.max_args < 0 || cs.argc <= fn.max_args + 2);
    if (arity_ok) cand.push_back(k);
  }
  if (cand.empty()) return {};
  if (!cs.qual.empty() && cs.qual != "::") {
    std::string last = cs.qual;
    const auto pos = last.rfind("::");
    if (pos != std::string::npos) last = last.substr(pos + 2);
    std::vector<int> filt;
    for (int k : cand)
      if (corpus_.fns[k].cls == last) filt.push_back(k);
    if (!filt.empty()) cand = std::move(filt);
  }
  // A same-class overload set is fine to traverse as a unit; candidates
  // spread over distinct classes are ambiguous -> unresolved (documented
  // false-negative edge).
  for (int k : cand)
    if (corpus_.fns[k].cls != corpus_.fns[cand[0]].cls) return {};
  return cand;
}

int Analyzer::enclosing_fn(int file, std::size_t tok) const {
  int best = -1;
  for (std::size_t k = 0; k < corpus_.fns.size(); ++k) {
    const Fn& fn = corpus_.fns[k];
    if (fn.file != file || fn.body_open == 0 || tok <= fn.body_open ||
        tok >= fn.body_close)
      continue;
    if (best < 0 || fn.body_open > corpus_.fns[best].body_open)
      best = static_cast<int>(k);
  }
  return best;
}

// ---------------------------------------------------------------------------
// irrevocable-call-in-tx
// ---------------------------------------------------------------------------

std::vector<Analyzer::Sink> Analyzer::scan_sinks(
    const SourceFile& f, std::size_t begin, std::size_t end,
    const std::vector<std::pair<std::size_t, std::size_t>>& excluded,
    std::size_t* waived_at) const {
  std::vector<Sink> out;
  *waived_at = 0;
  const auto& T = f.toks;
  for (std::size_t i = begin; i < end && i + 1 < T.size(); ++i) {
    if (const std::size_t to = skip_to(excluded, i)) {
      i = to;
      continue;
    }
    const Token& t = T[i];
    if (!is_id(t)) continue;
    const bool call = is_p(T[i + 1], "(");
    const bool recv =
        i > 0 && (is_p(T[i - 1], ".") || is_p(T[i - 1], "->"));
    const bool colon_prev = i > 0 && is_p(T[i - 1], "::");
    const bool qual_global = colon_prev && (i < 2 || !is_id(T[i - 2]));
    const bool qual_std = colon_prev && i >= 2 && id_is(T[i - 2], "std");
    auto add = [&](const char* label) {
      // An allow annotation on the sink line waives the sink itself, and
      // with it every transactional caller that reaches it transitively.
      if (f.allowed(t.line, "irrevocable-call-in-tx")) return;
      out.push_back(Sink{i, t.line, label});
    };

    if (call && !recv && t.text == "become_irrevocable") {
      *waived_at = i;
      return out;
    }
    if (call && recv) {
      if (name_in(t.text, {"lock", "unlock", "try_lock", "try_lock_for",
                           "lock_shared", "unlock_shared"})) {
        add("blocking mutex operation");
        continue;
      }
      if (name_in(t.text, {"submit", "submit_write"})) {
        add("async I/O submit");
        continue;
      }
    }
    if (call && name_in(t.text, {"sleep_for", "sleep_until", "usleep",
                                 "nanosleep"})) {
      add("sleep");
      continue;
    }
    if (call && !recv) {
      if (qual_global &&
          name_in(t.text, {"write", "pwrite", "pread", "read", "open",
                           "openat", "close", "lseek", "fsync", "fdatasync",
                           "ftruncate", "unlink", "rename"})) {
        add("POSIX I/O syscall");
        continue;
      }
      if ((!colon_prev || qual_global || qual_std) &&
          name_in(t.text, {"fsync", "fdatasync", "ftruncate", "truncate",
                           "unlink", "rename", "system", "fork", "msync"})) {
        add("POSIX I/O syscall");
        continue;
      }
      if ((!colon_prev || qual_global || qual_std) &&
          name_in(t.text, {"printf", "fprintf", "puts", "fputs", "fwrite",
                           "fflush", "putchar", "perror"})) {
        add("stdio output");
        continue;
      }
    }
    if (!call) {
      if (colon_prev && name_in(t.text, {"cout", "cerr", "clog"})) {
        add("iostream output");
        continue;
      }
      if (name_in(t.text, {"lock_guard", "unique_lock", "scoped_lock",
                           "shared_lock", "condition_variable",
                           "condition_variable_any"})) {
        add("blocking sync primitive");
        continue;
      }
      if (colon_prev && i >= 2 && id_is(T[i - 2], "std") &&
          name_in(t.text,
                  {"mutex", "shared_mutex", "recursive_mutex",
                   "timed_mutex"})) {
        add("OS mutex");
        continue;
      }
    }
  }
  return out;
}

Analyzer::SinkSummary Analyzer::sink_summary(int fn_idx) {
  const int st = sink_state_[fn_idx];
  if (st == 2) return sink_memo_[fn_idx];
  if (st == 1) return SinkSummary{};  // cycle: optimistic
  sink_state_[fn_idx] = 1;

  SinkSummary s;
  const Fn& fn = corpus_.fns[fn_idx];
  if (fn.body_open != 0) {
    const SourceFile& f = corpus_.files[fn.file];
    const auto excl = epilogue_ranges(f, fn.body_open + 1, fn.body_close);
    std::size_t waived = 0;
    for (const Sink& sk :
         scan_sinks(f, fn.body_open + 1, fn.body_close, excl, &waived)) {
      if (f.allowed(sk.line, "irrevocable-call-in-tx")) continue;
      s.has = true;
      s.label = sk.label;
      s.chain.push_back(qname(fn) + " hits " + sk.label + " at " + f.path +
                        ":" + std::to_string(sk.line));
      break;
    }
    if (!s.has) {
      const std::size_t end = waived != 0 ? waived : fn.body_close;
      for (const CallSite& cs :
           collect_calls(f, fn.body_open + 1, end, excl)) {
        for (int callee : resolve(cs)) {
          if (callee == fn_idx) continue;
          if (machinery(corpus_.files[corpus_.fns[callee].file].path))
            continue;
          const SinkSummary sub = sink_summary(callee);
          if (sub.has) {
            s.has = true;
            s.label = sub.label;
            s.chain.push_back(qname(fn) + " calls " +
                              qname(corpus_.fns[callee]) + " at " + f.path +
                              ":" + std::to_string(cs.line));
            s.chain.insert(s.chain.end(), sub.chain.begin(), sub.chain.end());
            break;
          }
        }
        if (s.has) break;
      }
    }
  }
  sink_state_[fn_idx] = 2;
  sink_memo_[fn_idx] = s;
  return s;
}

void Analyzer::check_irrevocable(std::vector<Finding>& out, bool scoped) {
  for (const TxRegion& r : tx_regions("irrevocable-call-in-tx", scoped)) {
    const SourceFile& f = corpus_.files[r.file];
    const auto excl = epilogue_ranges(f, r.begin, r.end);
    std::size_t waived = 0;
    for (const Sink& sk : scan_sinks(f, r.begin, r.end, excl, &waived)) {
      Finding fd;
      fd.check = "irrevocable-call-in-tx";
      fd.path = f.path;
      fd.line = sk.line;
      fd.message = std::string(sk.label) + " inside transactional region '" +
                   r.desc + "'; defer it with atomic_defer or use "
                   "become_irrevocable";
      fd.ctx = r.desc;
      out.push_back(std::move(fd));
    }
    const std::size_t end = waived != 0 ? waived : r.end;
    for (const CallSite& cs : collect_calls(f, r.begin, end, excl)) {
      for (int callee : resolve(cs)) {
        if (machinery(corpus_.files[corpus_.fns[callee].file].path)) continue;
        if (r.fn >= 0 && callee == r.fn) continue;
        const SinkSummary sub = sink_summary(callee);
        if (sub.has) {
          Finding fd;
          fd.check = "irrevocable-call-in-tx";
          fd.path = f.path;
          fd.line = cs.line;
          fd.message = "call to '" + cs.name + "' reaches " + sub.label +
                       " inside transactional region '" + r.desc +
                       "'; defer it with atomic_defer";
          fd.chain = sub.chain;
          fd.ctx = r.desc;
          out.push_back(std::move(fd));
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// defer-ordering
// ---------------------------------------------------------------------------

std::vector<Analyzer::DoEvent> Analyzer::scan_do_events(
    const SourceFile& f, std::size_t begin, std::size_t end,
    const std::string& tx, bool transitive) {
  std::vector<DoEvent> out;
  const auto excl = epilogue_ranges(f, begin, end);
  const auto& T = f.toks;
  std::vector<std::size_t> handled;
  // Objects whose TxLock this region has already subscribed/acquired:
  // TxLock::acquire is reentrant for the owning transaction, so a later
  // registration on a pre-subscribed object cannot block (and cannot
  // retry). Tracked by base identifier — a lexical heuristic.
  std::vector<std::pair<std::string, std::size_t>> presub;
  auto presubbed = [&](const std::string& base, std::size_t before) {
    if (base.empty()) return false;
    for (const auto& p : presub)
      if (p.first == base && p.second < before) return true;
    return false;
  };
  auto arg_base = [&](std::size_t b, std::size_t e) {
    std::string last;
    for (std::size_t k = b; k < e; ++k)
      if (is_id(T[k])) last = T[k].text;
    return last;
  };
  for (std::size_t i = begin; i < end && i + 1 < T.size(); ++i) {
    if (const std::size_t to = skip_to(excl, i)) {
      i = to;
      continue;
    }
    const Token& t = T[i];
    if (!is_id(t) || !is_p(T[i + 1], "(")) continue;
    const bool recv =
        i > 0 && (is_p(T[i - 1], ".") || is_p(T[i - 1], "->"));

    // Ordered registrations / blocking waits: must come before any write.
    if (t.text == "atomic_defer" && !recv) {
      const auto args = split_args(f, i + 1);
      // Two-argument atomic_defer is the "pass nil" form: no TxLocks, no
      // retry risk. Three or more arguments (and a non-empty lock list)
      // acquire locks inside the transaction.
      bool locks = args.size() >= 3;
      if (locks && args.size() == 3 && args[2].second == args[2].first + 2 &&
          is_p(T[args[2].first], "{") && is_p(T[args[2].first + 1], "}"))
        locks = false;  // atomic_defer(tx, fn, {})
      if (locks) {
        bool all_presub = true;
        for (std::size_t a = 2; a < args.size(); ++a)
          if (!presubbed(arg_base(args[a].first, args[a].second), i))
            all_presub = false;
        if (!all_presub)
          out.push_back(DoEvent{i, t.line, false,
                                "atomic_defer with TxLocks", {}});
      }
      handled.push_back(i);
      continue;
    }
    if (recv && t.text == "log" && first_arg_is(f, i, tx)) {
      if (!presubbed(receiver_base(f, i), i))
        out.push_back(DoEvent{
            i, t.line, false,
            "ordered deferred log ('" + receiver_base(f, i) + ".log')", {}});
      handled.push_back(i);
      continue;
    }
    if ((t.text == "durable_write" || t.text == "wait_durable") &&
        first_arg_is(f, i, tx)) {
      const auto args = split_args(f, i + 1);
      bool all_presub = args.size() > 1;
      for (std::size_t a = 1; a < args.size(); ++a)
        if (!presubbed(arg_base(args[a].first, args[a].second), i))
          all_presub = false;
      if (!all_presub)
        out.push_back(
            DoEvent{i, t.line, false, "'" + t.text + "' registration", {}});
      handled.push_back(i);
      continue;
    }
    if ((t.text == "acquire" || t.text == "subscribe") &&
        first_arg_is(f, i, tx)) {
      std::string base = receiver_base(f, i);
      if (base.empty()) base = "this";
      if (!presubbed(base, i))
        out.push_back(DoEvent{i, t.line, false,
                              "TxLock " + t.text + " (blocks via retry when "
                              "contended)", {}});
      presub.emplace_back(base, i);
      handled.push_back(i);
      continue;
    }

    // Tvar writes.
    if (recv && t.text == "store_direct") {
      out.push_back(DoEvent{i, t.line, true,
                            "raw store ('" + receiver_base(f, i) +
                                ".store_direct')", {}});
      handled.push_back(i);
      continue;
    }
    if (recv &&
        name_in(t.text, {"set", "put", "del", "insert", "erase", "remove",
                         "push", "push_back", "pop", "store", "append",
                         "clear", "add", "incr", "write"}) &&
        first_arg_is(f, i, tx)) {
      out.push_back(DoEvent{i, t.line, true,
                            "tvar write ('" + receiver_base(f, i) + "." +
                                t.text + "')", {}});
      handled.push_back(i);
      continue;
    }
  }

  if (transitive) {
    for (const CallSite& cs : collect_calls(f, begin, end, excl)) {
      if (std::find(handled.begin(), handled.end(), cs.tok) != handled.end())
        continue;
      for (int callee : resolve(cs)) {
        if (machinery(corpus_.files[corpus_.fns[callee].file].path)) continue;
        const DoSummary ds = do_summary(callee);
        const Fn& cfn = corpus_.fns[callee];
        auto wevent = [&] {
          out.push_back(DoEvent{cs.tok, cs.line, true,
                                "call to '" + qname(cfn) + "' which writes",
                                {qname(cfn) + ": " + ds.wwhat + " at " +
                                 corpus_.files[cfn.file].path + ":" +
                                 std::to_string(ds.write_line)}});
        };
        auto revent = [&] {
          out.push_back(DoEvent{cs.tok, cs.line, false,
                                "call to '" + qname(cfn) +
                                    "' which registers an ordered deferral",
                                {qname(cfn) + ": " + ds.rwhat + " at " +
                                 corpus_.files[cfn.file].path + ":" +
                                 std::to_string(ds.reg_line)}});
        };
        // A callee that registers on its receiver is harmless when that
        // object's TxLock was subscribed earlier in this region (reentrant
        // acquire — cannot block, cannot retry).
        const bool reg_suppressed =
            ds.reg_line >= 0 && presubbed(receiver_base(f, cs.tok), cs.tok);
        // Emit in the callee's own internal order (stable_sort keeps it).
        if (ds.reg_first) {
          if (ds.reg_line >= 0 && !reg_suppressed) revent();
          if (ds.write_line >= 0) wevent();
        } else {
          if (ds.write_line >= 0) wevent();
          if (ds.reg_line >= 0 && !reg_suppressed) revent();
        }
        if (ds.write_line >= 0 || ds.reg_line >= 0) break;
      }
    }
  }
  std::stable_sort(
      out.begin(), out.end(),
      [](const DoEvent& a, const DoEvent& b) { return a.tok < b.tok; });
  return out;
}

Analyzer::DoSummary Analyzer::do_summary(int fn_idx) {
  const int st = do_state_[fn_idx];
  if (st == 2) return do_memo_[fn_idx];
  if (st == 1) return DoSummary{};
  do_state_[fn_idx] = 1;

  DoSummary s;
  const Fn& fn = corpus_.fns[fn_idx];
  if (fn.body_open != 0) {
    const SourceFile& f = corpus_.files[fn.file];
    for (const DoEvent& ev : scan_do_events(f, fn.body_open + 1,
                                            fn.body_close, fn.tx_param,
                                            /*transitive=*/true)) {
      if (ev.write && s.write_line < 0) {
        s.write_line = ev.line;
        s.wwhat = ev.what;
      }
      if (!ev.write && s.reg_line < 0) {
        s.reg_line = ev.line;
        s.rwhat = ev.what;
        s.reg_first = s.write_line < 0;
      }
    }
  }
  do_state_[fn_idx] = 2;
  do_memo_[fn_idx] = s;
  return s;
}

void Analyzer::check_defer_ordering(std::vector<Finding>& out, bool scoped) {
  for (const TxRegion& r : tx_regions("defer-ordering", scoped)) {
    const SourceFile& f = corpus_.files[r.file];
    const auto events =
        scan_do_events(f, r.begin, r.end, r.tx, /*transitive=*/true);
    const DoEvent* first_write = nullptr;
    for (const DoEvent& ev : events) {
      if (ev.write) {
        if (first_write == nullptr) first_write = &ev;
        continue;
      }
      if (first_write == nullptr) continue;
      Finding fd;
      fd.check = "defer-ordering";
      fd.path = f.path;
      fd.line = ev.line;
      fd.message =
          ev.what + " after the transaction's first tvar write (" +
          first_write->what + " at line " +
          std::to_string(first_write->line) + ") in region '" + r.desc +
          "'; a contended registration retries, which is illegal after a "
          "write under direct-update modes — register deferrals first";
      fd.chain = ev.chain;
      if (!first_write->chain.empty())
        fd.chain.insert(fd.chain.end(), first_write->chain.begin(),
                        first_write->chain.end());
      fd.ctx = r.desc;
      out.push_back(std::move(fd));
    }
  }
}

// ---------------------------------------------------------------------------
// epilogue-purity
// ---------------------------------------------------------------------------

void Analyzer::check_epilogue_purity(std::vector<Finding>& out, bool scoped) {
  for (const TxRegion& r : tx_regions("epilogue-purity", scoped)) {
    const SourceFile& f = corpus_.files[r.file];
    const auto& T = f.toks;
    for (const auto& ep : epilogue_ranges(f, r.begin, r.end)) {
      // ep.first is the lambda's '['; find the body.
      std::size_t cc = 0, bo = 0, bc = 0;
      if (!lambda_at(f, ep.first, cc, bo, bc)) continue;
      auto flag = [&](std::size_t i, const std::string& msg) {
        Finding fd;
        fd.check = "epilogue-purity";
        fd.path = f.path;
        fd.line = T[i].line;
        fd.message = msg + " in deferred epilogue of region '" + r.desc +
                     "' (epilogues run post-commit and must not touch the "
                     "STM runtime)";
        fd.ctx = r.desc;
        out.push_back(std::move(fd));
      };
      // Capturing the transactional handle is wrong even before use.
      if (!r.tx.empty()) {
        for (std::size_t i = ep.first + 1; i < cc; ++i)
          if (id_is(T[i], r.tx.c_str()))
            flag(i, "captures transactional handle '" + r.tx + "'");
      }
      for (std::size_t i = bo + 1; i < bc; ++i) {
        if (!is_id(T[i])) continue;
        const bool call = is_p(T[i + 1], "(");
        const bool recv =
            i > 0 && (is_p(T[i - 1], ".") || is_p(T[i - 1], "->"));
        if (!r.tx.empty() && id_is(T[i], r.tx.c_str())) {
          flag(i, "uses transactional handle '" + r.tx + "'");
          continue;
        }
        if (call && !recv &&
            (T[i].text == "atomic" || T[i].text == "atomic_nested")) {
          // Only when actually passing a lambda (i.e. running a
          // transaction), to dodge unrelated names.
          const auto args = split_args(f, i + 1);
          std::size_t lbo = 0, lbc = 0;
          bool is_txn = false;
          for (const auto& a : args)
            if (arg_is_lambda(f, a.first, a.second, lbo, lbc)) is_txn = true;
          if (is_txn) flag(i, "re-enters stm::atomic");
          continue;
        }
        if (call && !recv && T[i].text == "atomic_defer") {
          flag(i, "registers a new deferral");
          continue;
        }
        if (call && !recv && T[i].text == "retry") {
          flag(i, "calls stm::retry");
          continue;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ref-capture-into-defer
// ---------------------------------------------------------------------------

void Analyzer::check_ref_capture(std::vector<Finding>& out, bool scoped) {
  const auto regions = tx_regions("ref-capture-into-defer", scoped);
  for (std::size_t fi = 0; fi < corpus_.files.size(); ++fi) {
    const SourceFile& f = corpus_.files[fi];
    if (scoped &&
        (!in_scope("ref-capture-into-defer", f.path) || machinery(f.path)))
      continue;
    const auto& T = f.toks;
    for (std::size_t i = 0; i + 1 < T.size(); ++i) {
      if (!id_is(T[i], "atomic_defer") || !is_p(T[i + 1], "(")) continue;
      if (i > 0 && (is_p(T[i - 1], ".") || is_p(T[i - 1], "->"))) continue;
      const auto args = split_args(f, i + 1);
      if (args.size() < 2) continue;
      std::size_t cc = 0, bo = 0, bc = 0;
      if (!is_p(T[args[1].first], "[") ||
          !lambda_at(f, args[1].first, cc, bo, bc))
        continue;
      // Innermost enclosing transactional region, for scope tracking.
      const TxRegion* reg = nullptr;
      for (const auto& r : regions) {
        if (r.file != static_cast<int>(fi) || i < r.begin || i > r.end)
          continue;
        if (reg == nullptr || r.begin > reg->begin) reg = &r;
      }
      auto flag = [&](std::size_t at, const std::string& msg) {
        Finding fd;
        fd.check = "ref-capture-into-defer";
        fd.path = f.path;
        fd.line = T[at].line;
        fd.message = msg;
        fd.ctx = reg != nullptr ? reg->desc : std::string("atomic_defer");
        out.push_back(std::move(fd));
      };
      // Walk the capture list [args[1].first+1, cc).
      const auto caps = split_args(f, args[1].first);
      for (const auto& cap : caps) {
        if (cap.first >= cap.second) continue;
        const std::size_t b = cap.first;
        if (is_p(T[b], "&")) {
          if (cap.second == b + 1) {
            flag(b,
                 "blanket [&] capture in atomic_defer lambda; the epilogue "
                 "runs post-commit — capture by value (or move) instead");
            continue;
          }
          if (is_id(T[b + 1])) {
            const std::string name = T[b + 1].text;
            // Init-capture `&x = expr` aliases expr; plain `&x` aliases x.
            // Either way, a region-local is dead wrong to alias if the
            // region can retry (the epilogue sees the last attempt's
            // frame, but earlier attempts' effects were rolled back).
            if (reg != nullptr && declared_in(f, name, reg->begin, i))
              flag(b + 1,
                   "captures region-local '" + name +
                       "' by reference in atomic_defer lambda; locals "
                       "declared inside the transaction are re-created on "
                       "retry — capture by value (or move) instead");
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// raw-tvar-access
// ---------------------------------------------------------------------------

void Analyzer::build_callers() {
  if (callers_built_) return;
  callers_built_ = true;
  for (std::size_t k = 0; k < corpus_.fns.size(); ++k) {
    const Fn& fn = corpus_.fns[k];
    if (fn.body_open == 0) continue;
    const SourceFile& f = corpus_.files[fn.file];
    for (const CallSite& cs :
         collect_calls(f, fn.body_open + 1, fn.body_close, {}))
      callers_of_[cs.name].push_back(static_cast<int>(k));
  }
}

bool Analyzer::raw_context_allowed(int fn_idx, std::map<int, int>& state) {
  auto it = state.find(fn_idx);
  if (it != state.end()) return it->second != 0;
  const Fn& fn = corpus_.fns[fn_idx];
  if (fn.ctor_dtor || fn.name == "main" ||
      (fn.name.size() > 7 &&
       fn.name.compare(fn.name.size() - 7, 7, "_direct") == 0)) {
    state[fn_idx] = 1;
    return true;
  }
  // Optimistic for cycles: recursion through an allowed entry point stays
  // allowed.
  state[fn_idx] = 1;
  build_callers();
  const auto cit = callers_of_.find(fn.name);
  bool ok = cit != callers_of_.end() && !cit->second.empty();
  if (ok) {
    for (int caller : cit->second) {
      if (caller == fn_idx) continue;
      if (!raw_context_allowed(caller, state)) {
        ok = false;
        break;
      }
    }
  }
  state[fn_idx] = ok ? 1 : 0;
  return ok;
}

void Analyzer::check_raw_tvar(std::vector<Finding>& out, bool scoped) {
  std::map<int, int> state;
  for (std::size_t fi = 0; fi < corpus_.files.size(); ++fi) {
    const SourceFile& f = corpus_.files[fi];
    if (scoped &&
        (!in_scope("raw-tvar-access", f.path) || machinery(f.path)))
      continue;
    const auto& T = f.toks;
    // Bodies of lambdas handed to stm::atomic / atomic_nested in this
    // file, for the load-outside-tx exemption below.
    std::vector<std::pair<std::size_t, std::size_t>> atomic_bodies;
    for (std::size_t i = 0; i + 1 < T.size(); ++i) {
      if (!is_id(T[i]) ||
          !(T[i].text == "atomic" || T[i].text == "atomic_nested"))
        continue;
      if (!is_p(T[i + 1], "(")) continue;
      if (i > 0 && (is_p(T[i - 1], ".") || is_p(T[i - 1], "->"))) continue;
      for (const auto& a : split_args(f, i + 1)) {
        std::size_t bo = 0, bc = 0;
        if (arg_is_lambda(f, a.first, a.second, bo, bc))
          atomic_bodies.emplace_back(bo, bc);
      }
    }
    for (std::size_t i = 1; i + 1 < T.size(); ++i) {
      if (!is_id(T[i]) ||
          !(T[i].text == "load_direct" || T[i].text == "store_direct"))
        continue;
      if (!is_p(T[i + 1], "(")) continue;
      if (!is_p(T[i - 1], ".") && !is_p(T[i - 1], "->")) continue;
      const int enc = enclosing_fn(static_cast<int>(fi), i);
      if (T[i].text == "load_direct") {
        // A raw *load* in code with no transactional context is a point
        // snapshot (monitoring loops, post-join asserts); tmsan owns that
        // race class dynamically. Raw *stores* stay strict everywhere.
        const bool in_tx_fn =
            enc >= 0 && !corpus_.fns[enc].tx_param.empty();
        bool in_atomic = false;
        for (const auto& b : atomic_bodies)
          if (i > b.first && i < b.second) {
            in_atomic = true;
            break;
          }
        if (!in_tx_fn && !in_atomic) continue;
      }
      if (enc >= 0 && raw_context_allowed(enc, state)) continue;
      if (enc >= 0) {
        const Fn& fn = corpus_.fns[enc];
        // tx.alloc init idiom: raw-initialising an object created by this
        // transaction is safe (nobody else can see it yet).
        const std::string base = receiver_base(f, i);
        bool alloc_init = false;
        if (!base.empty() && !fn.tx_param.empty()) {
          for (std::size_t j = fn.body_open + 1; j + 1 < i; ++j) {
            if (!id_is(T[j], base.c_str()) || !is_p(T[j + 1], "=")) continue;
            for (std::size_t k = j + 2; k < i && !is_p(T[k], ";"); ++k)
              if (id_is(T[k], "alloc") || id_is(T[k], "tx_alloc"))
                alloc_init = true;
            if (alloc_init) break;
          }
        }
        if (alloc_init) continue;
        // tmsan::ScopedRawIgnore in scope before the access.
        bool ignored = false;
        for (std::size_t j = fn.body_open + 1; j < i; ++j)
          if (id_is(T[j], "ScopedRawIgnore")) ignored = true;
        if (ignored) continue;
      }
      Finding fd;
      fd.check = "raw-tvar-access";
      fd.path = f.path;
      fd.line = T[i].line;
      fd.message =
          "raw tvar access '" + T[i].text + "' outside an init/teardown or "
          "*_direct context; use get/set(tx) inside a transaction, add "
          "tmsan::ScopedRawIgnore for gate-serialized phases, or rename "
          "the accessor with a _direct suffix";
      fd.ctx = enc >= 0 ? qname(corpus_.fns[enc]) : f.path;
      out.push_back(std::move(fd));
    }
  }
}

// ---------------------------------------------------------------------------
// legacy checks (ported from the awk adtmlint)
// ---------------------------------------------------------------------------

void Analyzer::check_deadline(std::vector<Finding>& out, bool scoped) {
  for (std::size_t fi = 0; fi < corpus_.files.size(); ++fi) {
    const SourceFile& f = corpus_.files[fi];
    if (scoped && !in_scope("deadline", f.path)) continue;
    if (name_in(f.path, {"src/defer/txlock.hpp", "src/defer/txcondvar.hpp",
                         "src/stm/api.hpp", "tests/common/deadline_test.cpp"}))
      continue;
    const auto& T = f.toks;
    for (std::size_t i = 0; i + 1 < T.size(); ++i) {
      if (!is_id(T[i]) || !is_p(T[i + 1], "(")) continue;
      if (!name_in(T[i].text,
                   {"acquire_until", "acquire_for", "subscribe_until",
                    "subscribe_for", "retry_until", "retry_for", "wait_until",
                    "wait_for"}))
        continue;
      // std::condition_variable waits — wait_for(lk, ...) — are the OS
      // kind, not ours; the legacy check skipped them the same way.
      if (i + 2 < T.size() && id_is(T[i + 2], "lk")) continue;
      Finding fd;
      fd.check = "deadline";
      fd.path = f.path;
      fd.line = T[i].line;
      fd.message =
          "deadline-variant blocking call '" + T[i].text +
          "' outside the sanctioned wrappers; make sure the deadline "
          "semantics are deliberate (see src/defer/txlock.hpp)";
      fd.ctx = T[i].text;
      out.push_back(std::move(fd));
    }
  }
}

void Analyzer::check_tx_region(std::vector<Finding>& out, bool scoped) {
  for (const TxRegion& r : tx_regions("tx-region", scoped)) {
    const SourceFile& f = corpus_.files[r.file];
    const auto excl = epilogue_ranges(f, r.begin, r.end);
    const auto& T = f.toks;
    for (std::size_t i = r.begin; i < r.end && i + 1 < T.size(); ++i) {
      if (const std::size_t to = skip_to(excl, i)) {
        i = to;
        continue;
      }
      if (!is_id(T[i])) continue;
      const char* what = nullptr;
      if (T[i].text == "sleep_for" || T[i].text == "sleep_until")
        what = "thread sleep";
      else if (T[i].text == "mutex" && i > 0 && is_p(T[i - 1], "::") &&
               i >= 2 && id_is(T[i - 2], "std"))
        what = "std::mutex";
      else if ((T[i].text == "lock_guard" || T[i].text == "unique_lock") &&
               is_p(T[i + 1], "<"))
        what = "OS lock wrapper";
      if (what == nullptr) continue;
      Finding fd;
      fd.check = "tx-region";
      fd.path = f.path;
      fd.line = T[i].line;
      fd.message = std::string(what) +
                   " lexically inside an stm::atomic body; transactions "
                   "must not block on OS primitives (defer the operation "
                   "or restructure)";
      fd.ctx = r.desc;
      out.push_back(std::move(fd));
    }
  }
}

void Analyzer::check_env_config(std::vector<Finding>& out, bool scoped) {
  for (std::size_t fi = 0; fi < corpus_.files.size(); ++fi) {
    const SourceFile& f = corpus_.files[fi];
    if (scoped && !in_scope("env-config", f.path)) continue;
    if (name_in(f.path, {"src/common/env.cpp", "src/common/runtime_config.cpp"}))
      continue;
    const auto& T = f.toks;
    for (std::size_t i = 0; i + 2 < T.size(); ++i) {
      if (!id_is(T[i], "getenv") || !is_p(T[i + 1], "(")) continue;
      const Token& arg = T[i + 2];
      if (arg.kind != Token::Kind::String ||
          arg.text.compare(0, 5, "ADTM_") != 0)
        continue;
      Finding fd;
      fd.check = "env-config";
      fd.path = f.path;
      fd.line = T[i].line;
      fd.message = "direct getenv(\"" + arg.text +
                   "\"); route ADTM_* configuration through common/env.cpp "
                   "so defaults and validation stay in one place";
      fd.ctx = arg.text;
      out.push_back(std::move(fd));
    }
  }
}

void Analyzer::check_algo_enum(std::vector<Finding>& out, bool scoped) {
  for (std::size_t fi = 0; fi < corpus_.files.size(); ++fi) {
    const SourceFile& f = corpus_.files[fi];
    if (scoped && !in_scope("algo-enum", f.path)) continue;
    if (has_prefix(f.path, "src/stm/")) continue;
    const auto& T = f.toks;
    for (std::size_t i = 0; i + 1 < T.size(); ++i) {
      if (!id_is(T[i], "Algo") || !is_p(T[i + 1], "::")) continue;
      Finding fd;
      fd.check = "algo-enum";
      fd.path = f.path;
      fd.line = T[i].line;
      fd.message =
          "stm::Algo referenced outside src/stm/; select algorithms via "
          "runtime configuration, not hard-coded enum values";
      fd.ctx = "Algo";
      out.push_back(std::move(fd));
    }
  }
}

// ---------------------------------------------------------------------------

std::vector<Finding> Analyzer::run(const std::string& name, bool scoped) {
  std::vector<Finding> out;
  if (name == "irrevocable-call-in-tx")
    check_irrevocable(out, scoped);
  else if (name == "defer-ordering")
    check_defer_ordering(out, scoped);
  else if (name == "epilogue-purity")
    check_epilogue_purity(out, scoped);
  else if (name == "ref-capture-into-defer")
    check_ref_capture(out, scoped);
  else if (name == "raw-tvar-access")
    check_raw_tvar(out, scoped);
  else if (name == "deadline")
    check_deadline(out, scoped);
  else if (name == "tx-region")
    check_tx_region(out, scoped);
  else if (name == "env-config")
    check_env_config(out, scoped);
  else if (name == "algo-enum")
    check_algo_enum(out, scoped);

  // Comment suppressions: the canonical name, the legacy alias, or "all".
  const char* alias = nullptr;
  for (const auto& c : checks())
    if (name == c.name) alias = c.alias;
  std::unordered_map<std::string, const SourceFile*> by_path;
  for (const auto& f : corpus_.files) by_path[f.path] = &f;
  std::vector<Finding> kept;
  for (auto& fd : out) {
    const auto it = by_path.find(fd.path);
    if (it != by_path.end()) {
      const SourceFile& f = *it->second;
      if (f.allowed(fd.line, name) || f.allowed(fd.line, "all") ||
          (alias != nullptr && f.allowed(fd.line, alias)))
        continue;
    }
    kept.push_back(std::move(fd));
  }

  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    return a.message < b.message;
  });
  kept.erase(std::unique(kept.begin(), kept.end(),
                         [](const Finding& a, const Finding& b) {
                           return a.path == b.path && a.line == b.line &&
                                  a.message == b.message;
                         }),
             kept.end());
  return kept;
}

}  // namespace txsafety
