#include "lexer.hpp"

#include <array>
#include <cctype>
#include <cstddef>

namespace txsafety {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators the checks care about (receiver chains,
// stream inserts, scope resolution). Everything else lexes as one char.
const std::array<const char*, 12> kPuncts = {"::", "->", "<<", ">>", "==",
                                             "!=", "<=", ">=", "&&", "||",
                                             "+=", "-="};

// Harvest `txsafety:allow(a,b)` / `adtmlint:allow name` out of a comment.
void harvest_allows(const std::string& comment, int line, SourceFile& out) {
  static const std::string kNew = "txsafety:allow";
  static const std::string kOld = "adtmlint:allow";
  for (std::size_t at = 0; (at = comment.find(kNew, at)) != std::string::npos;
       at += kNew.size()) {
    std::size_t p = at + kNew.size();
    while (p < comment.size() && (comment[p] == ' ' || comment[p] == '('))
      ++p;
    while (p < comment.size()) {
      std::size_t b = p;
      while (p < comment.size() &&
             (ident_char(comment[p]) || comment[p] == '-'))
        ++p;
      if (p == b) break;
      out.allows[line].insert(comment.substr(b, p - b));
      while (p < comment.size() && (comment[p] == ' ' || comment[p] == ','))
        ++p;
      if (p >= comment.size() || comment[p] == ')') break;
    }
  }
  for (std::size_t at = 0; (at = comment.find(kOld, at)) != std::string::npos;
       at += kOld.size()) {
    std::size_t p = at + kOld.size();
    while (p < comment.size() && comment[p] == ' ') ++p;
    std::size_t b = p;
    while (p < comment.size() && (ident_char(comment[p]) || comment[p] == '-'))
      ++p;
    if (p > b) out.allows[line].insert(comment.substr(b, p - b));
  }
}

}  // namespace

bool is_control_keyword(const std::string& t) {
  return t == "if" || t == "for" || t == "while" || t == "switch" ||
         t == "catch" || t == "return" || t == "sizeof" || t == "alignof" ||
         t == "alignas" || t == "decltype" || t == "static_assert" ||
         t == "assert" || t == "throw" || t == "noexcept" || t == "typeid" ||
         t == "static_cast" || t == "dynamic_cast" || t == "const_cast" ||
         t == "reinterpret_cast" || t == "defined";
}

bool SourceFile::allowed(int line, const std::string& check) const {
  auto hit = [&](int l) {
    auto it = allows.find(l);
    return it != allows.end() && it->second.count(check) != 0;
  };
  if (hit(line)) return true;
  // Walk up through comment-only lines directly above.
  for (int l = line - 1; l > 0; --l) {
    if (code_lines.count(l) != 0) return false;
    if (allows.count(l) == 0) {
      // A blank line between the comment and the code breaks the chain
      // only if there is no allowance anywhere above in the comment block;
      // stop at the first line that is neither comment nor allowance.
      return false;
    }
    if (hit(l)) return true;
  }
  return false;
}

SourceFile lex(std::string path, const std::string& text) {
  SourceFile out;
  out.path = std::move(path);
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();

  auto push = [&](Token::Kind k, std::string t) {
    out.code_lines.insert(line);
    out.toks.push_back(Token{k, std::move(t), line});
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      std::size_t e = text.find('\n', i);
      if (e == std::string::npos) e = n;
      harvest_allows(text.substr(i, e - i), line, out);
      i = e;
      continue;
    }
    // Block comment (allowances attach to the line each marker sits on).
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      std::size_t e = i + 2;
      int l = line;
      std::size_t seg = i;
      while (e + 1 < n && !(text[e] == '*' && text[e + 1] == '/')) {
        if (text[e] == '\n') {
          harvest_allows(text.substr(seg, e - seg), l, out);
          ++l;
          seg = e + 1;
        }
        ++e;
      }
      const std::size_t stop = (e + 1 < n) ? e + 2 : n;
      harvest_allows(text.substr(seg, stop - seg), l, out);
      line = l;
      i = stop;
      continue;
    }
    // Preprocessor directive: drop to end of line, honouring \-continuations.
    if (c == '#' &&
        (out.toks.empty() || out.toks.back().line != line)) {
      while (i < n) {
        if (text[i] == '\n') {
          if (i > 0 && text[i - 1] == '\\') {
            ++line;
            ++i;
            continue;
          }
          break;
        }
        ++i;
      }
      continue;
    }
    // Raw string literal.
    if (c == 'R' && i + 1 < n && text[i + 1] == '"' &&
        (out.toks.empty() || out.toks.back().kind != Token::Kind::Ident ||
         true)) {
      // Only if R is not glued to a preceding identifier character.
      if (i == 0 || !ident_char(text[i - 1])) {
        std::size_t d = i + 2;
        std::string delim;
        while (d < n && text[d] != '(' && text[d] != '\n' &&
               delim.size() < 16) {
          delim.push_back(text[d]);
          ++d;
        }
        if (d < n && text[d] == '(') {
          const std::string closer = ")" + delim + "\"";
          std::size_t e = text.find(closer, d + 1);
          if (e == std::string::npos) e = n;
          const int start_line = line;
          for (std::size_t k = i; k < e && k < n; ++k)
            if (text[k] == '\n') ++line;
          out.code_lines.insert(start_line);
          out.toks.push_back(
              Token{Token::Kind::String, "<raw-string>", start_line});
          i = (e == n) ? n : e + closer.size();
          continue;
        }
      }
    }
    // String / char literal (with escapes).
    if (c == '"' || c == '\'') {
      const char q = c;
      std::size_t e = i + 1;
      while (e < n && text[e] != q && text[e] != '\n') {
        if (text[e] == '\\' && e + 1 < n) ++e;
        ++e;
      }
      push(q == '"' ? Token::Kind::String : Token::Kind::CharLit,
           text.substr(i + 1, e - i - 1));
      i = (e < n && text[e] == q) ? e + 1 : e;
      continue;
    }
    // Identifier / keyword.
    if (ident_start(c)) {
      std::size_t e = i + 1;
      while (e < n && ident_char(text[e])) ++e;
      push(Token::Kind::Ident, text.substr(i, e - i));
      i = e;
      continue;
    }
    // Number (coarse: we never interpret the value).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      std::size_t e = i + 1;
      while (e < n && (ident_char(text[e]) || text[e] == '.' ||
                       ((text[e] == '+' || text[e] == '-') &&
                        (text[e - 1] == 'e' || text[e - 1] == 'E' ||
                         text[e - 1] == 'p' || text[e - 1] == 'P'))))
        ++e;
      push(Token::Kind::Number, text.substr(i, e - i));
      i = e;
      continue;
    }
    // Punctuation, longest-match over the interesting multi-char set.
    bool matched = false;
    for (const char* p : kPuncts) {
      const std::size_t len = 2;
      if (i + len <= n && text.compare(i, len, p) == 0) {
        push(Token::Kind::Punct, p);
        i += len;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    push(Token::Kind::Punct, std::string(1, c));
    ++i;
  }
  out.toks.push_back(Token{Token::Kind::End, "", line});

  // Bracket matching: one stack per bracket flavour.
  out.match.assign(out.toks.size(), -1);
  std::vector<std::size_t> paren, brace, bracket;
  for (std::size_t t = 0; t < out.toks.size(); ++t) {
    const Token& tok = out.toks[t];
    if (tok.kind != Token::Kind::Punct || tok.text.size() != 1) continue;
    const char ch = tok.text[0];
    auto open = [&](std::vector<std::size_t>& st) { st.push_back(t); };
    auto close = [&](std::vector<std::size_t>& st) {
      if (st.empty()) return;
      out.match[st.back()] = static_cast<int>(t);
      out.match[t] = static_cast<int>(st.back());
      st.pop_back();
    };
    switch (ch) {
      case '(': open(paren); break;
      case ')': close(paren); break;
      case '{': open(brace); break;
      case '}': close(brace); break;
      case '[': open(bracket); break;
      case ']': close(bracket); break;
      default: break;
    }
  }
  return out;
}

}  // namespace txsafety
