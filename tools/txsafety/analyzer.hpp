// txsafety analyzer: whole-repo model (files + functions + call graph)
// and the check implementations.
//
// Check catalog (canonical name → what it enforces):
//   irrevocable-call-in-tx  no irrevocable operation (I/O, syscalls,
//                           blocking sync, stdio/iostream, async submit)
//                           reachable from transactional code, transitively
//                           through the cross-TU call graph, unless routed
//                           through atomic_defer or become_irrevocable
//   defer-ordering          ordered-TxLock deferral registration (TxLogger
//                           ::log, durable_write, TxLock::acquire, ...)
//                           must precede the transaction's first tvar
//                           write in the same region (the PR-6 crashmat
//                           lesson: a contended acquire retries, and a
//                           retry after a direct-mode write is illegal)
//   epilogue-purity         deferred lambdas / commit epilogues must not
//                           re-enter stm::atomic, register new deferrals,
//                           or use the transactional handle
//   ref-capture-into-defer  no [&] and no by-reference capture of locals
//                           declared inside the transactional region in
//                           lambdas handed to atomic_defer (alias of the
//                           retired awk check: defer-capture)
//   raw-tvar-access         load_direct/store_direct outside init/ctor//
//                           dtor/_direct-suffixed/gate-serialized contexts
//                           without a tmsan::ScopedRawIgnore or allow
//   deadline, tx-region, env-config, algo-enum
//                           ports of the legacy adtmlint awk checks (same
//                           semantics, token-accurate)
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "lexer.hpp"
#include "parse.hpp"

namespace txsafety {

struct Finding {
  std::string check;
  std::string path;
  int line = 0;
  std::string message;
  std::vector<std::string> chain;  // call chain, outermost first
  std::string ctx;                 // fingerprint context (function/region)

  std::string fingerprint() const { return check + "|" + path + "|" + ctx; }
};

struct Corpus {
  std::vector<SourceFile> files;
  std::vector<Fn> fns;
  std::unordered_map<std::string, std::vector<int>> fns_by_name;

  void add(SourceFile f);
  void index();  // build fns + fns_by_name after all files are added
};

struct CheckInfo {
  const char* name;
  const char* alias;  // legacy name, nullptr if none
  const char* what;
};

// A transactional region: the body of a lambda passed to stm::atomic /
// atomic_nested, or the body of a function taking stm::Tx&.
struct TxRegion {
  int file = -1;
  std::size_t begin = 0, end = 0;
  std::string tx;    // name of the Tx& handle in this region
  std::string desc;  // for messages / fingerprints
  int line = 0;
  int fn = -1;  // index into Corpus::fns, -1 for a lambda region
};

class Analyzer {
 public:
  explicit Analyzer(Corpus corpus);

  static const std::vector<CheckInfo>& checks();
  // Resolve an alias ("defer-capture") to its canonical name; returns ""
  // for unknown names.
  static std::string canonical(const std::string& name);

  // Run one check. `scoped` applies the check's default path scope (used
  // for repo-wide runs; explicit CLI paths pass scoped=false).
  std::vector<Finding> run(const std::string& canonical_name, bool scoped);

  const Corpus& corpus() const { return corpus_; }

 private:
  // --- shared infrastructure -------------------------------------------
  bool in_scope(const std::string& check, const std::string& path) const;
  static bool machinery(const std::string& path);
  std::vector<TxRegion> tx_regions(const std::string& check,
                                   bool scoped) const;
  // Sub-ranges of [begin, end) that are post-commit code (lambdas passed
  // to atomic_defer / on_commit / on_abort).
  std::vector<std::pair<std::size_t, std::size_t>> epilogue_ranges(
      const SourceFile& f, std::size_t begin, std::size_t end) const;
  std::vector<int> resolve(const CallSite& cs) const;
  int enclosing_fn(int file, std::size_t tok) const;

  // --- irrevocable-call-in-tx ------------------------------------------
  struct Sink {
    std::size_t tok = 0;
    int line = 0;
    std::string label;
  };
  std::vector<Sink> scan_sinks(
      const SourceFile& f, std::size_t begin, std::size_t end,
      const std::vector<std::pair<std::size_t, std::size_t>>& excluded,
      std::size_t* waived_at) const;
  struct SinkSummary {
    bool has = false;
    std::string label;
    std::vector<std::string> chain;  // "Cls::fn (path:line)" hops
  };
  SinkSummary sink_summary(int fn);
  void check_irrevocable(std::vector<Finding>& out, bool scoped);

  // --- defer-ordering ---------------------------------------------------
  struct DoEvent {
    std::size_t tok = 0;
    int line = 0;
    bool write = false;  // else: ordered registration / blocking wait
    std::string what;
    std::vector<std::string> chain;
  };
  std::vector<DoEvent> scan_do_events(const SourceFile& f, std::size_t begin,
                                      std::size_t end, const std::string& tx,
                                      bool transitive);
  struct DoSummary {
    int write_line = -1, reg_line = -1;
    std::string wwhat, rwhat;
    // True when the first registration precedes the first write inside the
    // callee: one call is then internally well-ordered, and only the
    // *second* call's registration can land after a write.
    bool reg_first = false;
  };
  DoSummary do_summary(int fn);
  void check_defer_ordering(std::vector<Finding>& out, bool scoped);

  // --- the rest ---------------------------------------------------------
  void check_epilogue_purity(std::vector<Finding>& out, bool scoped);
  void check_ref_capture(std::vector<Finding>& out, bool scoped);
  void check_raw_tvar(std::vector<Finding>& out, bool scoped);
  bool raw_context_allowed(int fn_idx, std::map<int, int>& state);
  void check_deadline(std::vector<Finding>& out, bool scoped);
  void check_tx_region(std::vector<Finding>& out, bool scoped);
  void check_env_config(std::vector<Finding>& out, bool scoped);
  void check_algo_enum(std::vector<Finding>& out, bool scoped);

  Corpus corpus_;
  std::unordered_map<int, SinkSummary> sink_memo_;
  std::unordered_map<int, int> sink_state_;  // 0 none, 1 in-flight, 2 done
  std::unordered_map<int, DoSummary> do_memo_;
  std::unordered_map<int, int> do_state_;
  // name -> fn indices that call it (for raw-tvar reverse reachability)
  std::unordered_map<std::string, std::vector<int>> callers_of_;
  bool callers_built_ = false;
  void build_callers();
};

}  // namespace txsafety
