// txsafety: whole-repo static analyzer for the atomic-deferral contract.
//
// Usage:
//   txsafety list
//   txsafety <check>|all [paths...] [options]
//
// Options:
//   --root DIR          repo root to scan (default: cwd)
//   --baseline FILE     baseline of accepted findings
//                       (default: tools/txsafety/baseline.txt under root)
//   --no-baseline       ignore any baseline file
//   --write-baseline    rewrite the baseline with the current findings
//   --quiet             suppress the per-check OK lines
//
// With explicit paths, scope filters are bypassed: the named files/dirs are
// scanned for the requested check regardless of the check's default scope
// (this is how the fixture corpus under tests/analysis/ drives the checks).
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer.hpp"

namespace fs = std::filesystem;
using txsafety::Analyzer;
using txsafety::Corpus;
using txsafety::Finding;

namespace {

bool source_ext(const fs::path& p) {
  const std::string e = p.extension().string();
  return e == ".cpp" || e == ".cc" || e == ".cxx" || e == ".hpp" ||
         e == ".h" || e == ".inl";
}

bool skip_dir(const std::string& name) {
  return name == ".git" || name.rfind("build", 0) == 0 ||
         name == "fixtures";
}

std::string rel_path(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path r = fs::relative(p, root, ec);
  const fs::path& use = (ec || r.empty()) ? p : r;
  return use.generic_string();
}

void add_file(Corpus& corpus, const fs::path& p, const fs::path& root) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return;
  std::ostringstream ss;
  ss << in.rdbuf();
  corpus.add(txsafety::lex(rel_path(p, root), ss.str()));
}

void walk(Corpus& corpus, const fs::path& dir, const fs::path& root) {
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->is_directory(ec)) {
      if (skip_dir(it->path().filename().string())) it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file(ec) && source_ext(it->path()))
      add_file(corpus, it->path(), root);
  }
}

int usage() {
  std::cerr << "usage: txsafety <check>|all|list [paths...] [--root DIR]\n"
               "                [--baseline FILE | --no-baseline]\n"
               "                [--write-baseline] [--quiet]\n"
               "checks:\n";
  for (const auto& c : Analyzer::checks()) {
    std::cerr << "  " << c.name;
    if (c.alias != nullptr) std::cerr << " (alias: " << c.alias << ")";
    std::cerr << "\n";
  }
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();

  std::string root = ".";
  std::string baseline_path;
  bool no_baseline = false, write_baseline = false, quiet = false;
  std::string what;
  std::vector<std::string> paths;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--root" && i + 1 < args.size()) {
      root = args[++i];
    } else if (a == "--baseline" && i + 1 < args.size()) {
      baseline_path = args[++i];
    } else if (a == "--no-baseline") {
      no_baseline = true;
    } else if (a == "--write-baseline") {
      write_baseline = true;
    } else if (a == "--quiet") {
      quiet = true;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "txsafety: unknown option '" << a << "'\n";
      return usage();
    } else if (what.empty()) {
      what = a;
    } else {
      paths.push_back(a);
    }
  }
  if (what.empty()) return usage();

  if (what == "list") {
    for (const auto& c : Analyzer::checks()) {
      std::cout << c.name;
      if (c.alias != nullptr) std::cout << " (alias: " << c.alias << ")";
      std::cout << "\n    " << c.what << "\n";
    }
    return 0;
  }

  std::vector<std::string> selected;
  if (what == "all") {
    for (const auto& c : Analyzer::checks()) selected.push_back(c.name);
  } else {
    const std::string canon = Analyzer::canonical(what);
    if (canon.empty()) {
      std::cerr << "txsafety: unknown check '" << what << "'\n";
      return usage();
    }
    selected.push_back(canon);
  }

  const fs::path rootp(root);
  Corpus corpus;
  const bool scoped = paths.empty();
  if (scoped) {
    for (const char* d : {"src", "tests", "bench", "examples", "tools"}) {
      const fs::path dir = rootp / d;
      std::error_code ec;
      if (fs::is_directory(dir, ec)) walk(corpus, dir, rootp);
    }
  } else {
    for (const auto& p : paths) {
      const fs::path fp(p);
      std::error_code ec;
      if (fs::is_directory(fp, ec))
        walk(corpus, fp, rootp);
      else if (fs::is_regular_file(fp, ec))
        add_file(corpus, fp, rootp);
      else {
        std::cerr << "txsafety: no such file or directory: " << p << "\n";
        return 2;
      }
    }
  }
  if (corpus.files.empty()) {
    std::cerr << "txsafety: nothing to scan under '" << root << "'\n";
    return 2;
  }
  corpus.index();

  if (baseline_path.empty())
    baseline_path = (rootp / "tools/txsafety/baseline.txt").string();
  std::set<std::string> baseline;
  if (!no_baseline && !write_baseline) {
    std::ifstream in(baseline_path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      baseline.insert(line);
    }
  }

  Analyzer az(std::move(corpus));
  const std::size_t nfiles = az.corpus().files.size();
  int findings = 0;
  std::set<std::string> fingerprints;
  for (const std::string& check : selected) {
    std::vector<Finding> found = az.run(check, scoped);
    std::size_t shown = 0;
    for (const Finding& fd : found) {
      fingerprints.insert(fd.fingerprint());
      if (baseline.count(fd.fingerprint()) != 0) continue;
      ++shown;
      ++findings;
      std::cout << "txsafety[" << fd.check << "]: " << fd.path << ":"
                << fd.line << ": " << fd.message << "\n";
      for (const std::string& hop : fd.chain)
        std::cout << "    via: " << hop << "\n";
    }
    if (shown == 0 && !quiet)
      std::cout << "OK " << check << ": no findings (" << nfiles
                << " files scanned)\n";
  }

  if (write_baseline) {
    std::ofstream outb(baseline_path, std::ios::trunc);
    if (!outb) {
      std::cerr << "txsafety: cannot write baseline " << baseline_path
                << "\n";
      return 2;
    }
    outb << "# txsafety baseline: accepted findings, one fingerprint per "
            "line (check|path|context)\n";
    for (const auto& fp : fingerprints) outb << fp << "\n";
    std::cout << "txsafety: wrote " << fingerprints.size()
              << " fingerprint(s) to " << baseline_path << "\n";
    return 0;
  }
  return findings == 0 ? 0 : 1;
}
