#include "parse.hpp"

#include <algorithm>

namespace txsafety {

namespace {

bool is_punct(const Token& t, const char* s) {
  return t.kind == Token::Kind::Punct && t.text == s;
}
bool is_ident(const Token& t) { return t.kind == Token::Kind::Ident; }

// Tokens that may sit between a function's ')' and its '{' (cv/ref
// qualifiers, noexcept, trailing return types, ctor init lists, ...).
bool specifier_ish(const Token& t) {
  if (is_ident(t) || t.kind == Token::Kind::Number) return true;
  if (t.kind != Token::Kind::Punct) return false;
  static const char* ok[] = {"::", "<", ">", "*", "&",  "&&",
                             "->", ",", ":", "...", "=="};
  for (const char* s : ok)
    if (t.text == s) return true;
  return false;
}

}  // namespace

bool lambda_at(const SourceFile& f, std::size_t i, std::size_t& capture_close,
               std::size_t& body_open, std::size_t& body_close) {
  if (!is_punct(f.toks[i], "[")) return false;
  if (i + 1 < f.toks.size() && is_punct(f.toks[i + 1], "[")) return false;
  if (i > 0) {
    const Token& prev = f.toks[i - 1];
    if (is_ident(prev) && !is_control_keyword(prev.text) &&
        prev.text != "return" && prev.text != "case" && prev.text != "in")
      return false;  // subscript: arr[i]
    if (is_punct(prev, ")") || is_punct(prev, "]")) return false;
  }
  if (f.match[i] < 0) return false;
  capture_close = static_cast<std::size_t>(f.match[i]);
  std::size_t k = capture_close + 1;
  if (k < f.toks.size() && is_punct(f.toks[k], "(")) {
    if (f.match[k] < 0) return false;
    k = static_cast<std::size_t>(f.match[k]) + 1;
  }
  // Skip specifiers / trailing return type until the body brace.
  for (int guard = 0; guard < 64 && k < f.toks.size(); ++guard, ++k) {
    const Token& t = f.toks[k];
    if (is_punct(t, "{")) {
      if (f.match[k] < 0) return false;
      body_open = k;
      body_close = static_cast<std::size_t>(f.match[k]);
      return true;
    }
    if (is_punct(t, "(") && f.match[k] >= 0) {
      k = static_cast<std::size_t>(f.match[k]);
      continue;
    }
    if (!specifier_ish(t)) return false;
  }
  return false;
}

std::vector<std::pair<std::size_t, std::size_t>> split_args(
    const SourceFile& f, std::size_t open) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  if (open >= f.toks.size() || f.match[open] < 0) return out;
  const std::size_t close = static_cast<std::size_t>(f.match[open]);
  if (close == open + 1) return out;  // ()
  std::size_t b = open + 1;
  for (std::size_t k = open + 1; k < close; ++k) {
    const Token& t = f.toks[k];
    if ((is_punct(t, "(") || is_punct(t, "{") || is_punct(t, "[")) &&
        f.match[k] > static_cast<int>(k)) {
      k = static_cast<std::size_t>(f.match[k]);
      continue;
    }
    if (is_punct(t, ",")) {
      out.emplace_back(b, k);
      b = k + 1;
    }
  }
  out.emplace_back(b, close);
  return out;
}

bool arg_is_lambda(const SourceFile& f, std::size_t b, std::size_t e,
                   std::size_t& body_open, std::size_t& body_close) {
  if (b >= e) return false;
  std::size_t cc = 0;
  return is_punct(f.toks[b], "[") && lambda_at(f, b, cc, body_open, body_close);
}

std::string lambda_first_param(const SourceFile& f, std::size_t body_open) {
  // Walk back over specifiers to the parameter list's ')'.
  std::size_t k = body_open;
  for (int guard = 0; guard < 64 && k > 0; ++guard) {
    --k;
    const Token& t = f.toks[k];
    if (is_punct(t, ")") && f.match[k] >= 0) {
      const std::size_t open = static_cast<std::size_t>(f.match[k]);
      const auto args = split_args(f, open);
      if (args.empty()) return "";
      // Parameter name = last identifier of the first parameter.
      for (std::size_t j = args[0].second; j > args[0].first;) {
        --j;
        if (is_ident(f.toks[j])) return f.toks[j].text;
      }
      return "";
    }
    if (is_punct(t, "]")) return "";  // capture list directly: no params
    if (!specifier_ish(t)) return "";
  }
  return "";
}

std::vector<Fn> extract_functions(const SourceFile& f, int file_idx) {
  std::vector<Fn> out;
  struct Scope {
    int kind;  // 0 namespace, 1 class, 2 function/other braces
    std::string name;
    std::size_t close;
  };
  std::vector<Scope> stack;

  const auto& T = f.toks;
  for (std::size_t i = 0; i < T.size(); ++i) {
    while (!stack.empty() && i > stack.back().close) stack.pop_back();
    if (!is_punct(T[i], "{") || f.match[i] < 0) continue;
    const std::size_t close = static_cast<std::size_t>(f.match[i]);

    // Inside a function (or opaque) brace: never a definition we extract.
    if (!stack.empty() && stack.back().kind == 2) {
      stack.push_back({2, "", close});
      continue;
    }

    // namespace X::Y { ... }  (also `namespace {`)
    {
      std::size_t k = i;
      while (k > 0 && (is_ident(T[k - 1]) || is_punct(T[k - 1], "::"))) --k;
      // k now sits on the first token of the identifier chain before '{'.
      if (k < i && is_ident(T[k]) && T[k].text == "namespace") {
        stack.push_back({0, "", close});
        continue;
      }
    }

    // class / struct / union NAME ... { — the keyword is the LAST
    // class/struct/union in the declaration so `template <class K, ...>
    // class X {` resolves to X, not a template parameter.
    {
      std::size_t b = i;
      int guard = 0;
      while (b > 0 && guard++ < 96) {
        const Token& t = T[b - 1];
        if (is_punct(t, ";") || is_punct(t, "}") || is_punct(t, "{")) break;
        --b;
      }
      std::size_t kw = 0;
      bool found = false;
      for (std::size_t k = b; k < i; ++k) {
        if (is_ident(T[k]) &&
            (T[k].text == "class" || T[k].text == "struct" ||
             T[k].text == "union") &&
            (k == 0 || T[k - 1].text != "enum")) {
          kw = k;
          found = true;
        }
      }
      if (found) {
        // A '(' between the keyword and '{' means this is really a
        // function (`template <class T> T f(T x) {`), except alignas(...).
        bool has_paren = false;
        for (std::size_t k = kw + 1; k < i; ++k) {
          if (!is_punct(T[k], "(")) continue;
          if (k > kw + 1 && is_ident(T[k - 1]) && T[k - 1].text == "alignas" &&
              f.match[k] >= 0) {
            k = static_cast<std::size_t>(f.match[k]);
            continue;
          }
          has_paren = true;
          break;
        }
        std::string cname;
        if (!has_paren) {
          for (std::size_t k = kw + 1; k < i; ++k) {
            if (is_ident(T[k]) && T[k].text != "final" &&
                T[k].text != "alignas") {
              cname = T[k].text;
              break;
            }
          }
        }
        if (!cname.empty()) {
          stack.push_back({1, cname, close});
          continue;
        }
      }
    }

    // Function definition: walk back over specifiers / ctor init lists to
    // the parameter list's ')'.
    bool extracted = false;
    std::size_t k = i;
    for (int guard = 0; guard < 256 && k > 0; ++guard) {
      --k;
      const Token& t = T[k];
      if (is_punct(t, ";") || is_punct(t, "{") || is_punct(t, "=")) break;
      if ((is_punct(t, "}") || is_punct(t, "]")) && f.match[k] >= 0 &&
          f.match[k] < static_cast<int>(k)) {
        k = static_cast<std::size_t>(f.match[k]);
        continue;
      }
      if (is_punct(t, ")") && f.match[k] >= 0) {
        const std::size_t pclose = k;
        const std::size_t popen = static_cast<std::size_t>(f.match[k]);
        if (popen == 0) break;
        std::size_t p = popen - 1;
        if (!is_ident(T[p])) break;  // operator overloads, casts: skip
        if (is_control_keyword(T[p].text) || T[p].text == "return") break;
        // Name chain: [~] A :: B :: name
        std::string name = T[p].text;
        std::string cls;
        std::size_t q = p;
        while (q >= 2 && is_punct(T[q - 1], "::") && is_ident(T[q - 2])) {
          cls = T[q - 2].text;
          q -= 2;
        }
        bool dtor = false;
        if (q >= 1 && is_punct(T[q - 1], "~")) {
          dtor = true;
          --q;
        }
        // Init-list item (`: member_(x)` / `, member_(x)`)? Keep walking.
        if (q >= 1 && (is_punct(T[q - 1], ",") || is_punct(T[q - 1], ":")) &&
            cls.empty()) {
          // `public: Ctor() {` is not an init list; `: member_(x) {` is.
          const bool access_label =
              is_punct(T[q - 1], ":") && q >= 2 && is_ident(T[q - 2]) &&
              (T[q - 2].text == "public" || T[q - 2].text == "private" ||
               T[q - 2].text == "protected");
          if (!access_label) {
            k = q;  // resume the walk just before the init-list item
            continue;
          }
        }
        Fn fn;
        fn.file = file_idx;
        fn.name = name;
        fn.cls = cls;
        fn.line = T[p].line;
        fn.params_open = popen;
        fn.params_close = pclose;
        fn.body_open = i;
        fn.body_close = close;
        // Enclosing class scope (in-class definition).
        if (fn.cls.empty()) {
          for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
            if (it->kind == 1) {
              fn.cls = it->name;
              break;
            }
          }
        }
        fn.ctor_dtor = dtor || (!fn.cls.empty() && fn.name == fn.cls);
        const auto params = split_args(f, popen);
        fn.max_args = static_cast<int>(params.size());
        fn.min_args = fn.max_args;
        for (const auto& pr : params) {
          bool defaulted = false;
          bool variadic = false;
          for (std::size_t j = pr.first; j < pr.second; ++j) {
            if (is_punct(T[j], "=")) defaulted = true;
            // "..." lexes as three '.' puncts.
            if (is_punct(T[j], ".") && j + 1 < pr.second &&
                is_punct(T[j + 1], "."))
              variadic = true;
            if ((is_punct(T[j], "(") || is_punct(T[j], "{")) &&
                f.match[j] > static_cast<int>(j))
              j = static_cast<std::size_t>(f.match[j]);
          }
          if (defaulted) --fn.min_args;
          if (variadic) fn.max_args = -1;
          // stm::Tx& tx parameter?
          for (std::size_t j = pr.first; j + 2 < pr.second; ++j) {
            if (is_ident(T[j]) && T[j].text == "Tx" &&
                (is_punct(T[j + 1], "&")) && is_ident(T[j + 2])) {
              fn.tx_param = T[j + 2].text;
            }
          }
        }
        out.push_back(std::move(fn));
        extracted = true;
        break;
      }
      if (!specifier_ish(t) && !is_punct(t, "~")) break;
    }
    stack.push_back({2, "", close});
    (void)extracted;
  }
  return out;
}

std::vector<CallSite> collect_calls(
    const SourceFile& f, std::size_t begin, std::size_t end,
    const std::vector<std::pair<std::size_t, std::size_t>>& excluded) {
  std::vector<CallSite> out;
  auto skipped = [&](std::size_t i) {
    for (const auto& r : excluded)
      if (i >= r.first && i <= r.second) return r.second;
    return std::size_t{0};
  };
  const auto& T = f.toks;
  for (std::size_t i = begin; i < end && i < T.size(); ++i) {
    if (const std::size_t to = skipped(i)) {
      i = to;
      continue;
    }
    if (!is_ident(T[i]) || i + 1 >= T.size() || !is_punct(T[i + 1], "("))
      continue;
    if (is_control_keyword(T[i].text) || T[i].text == "return") continue;
    if (i > 0 && is_ident(T[i - 1]) &&
        (T[i - 1].text == "new" || T[i - 1].text == "delete"))
      continue;
    CallSite cs;
    cs.tok = i;
    cs.line = T[i].line;
    cs.name = T[i].text;
    if (i > 0 && (is_punct(T[i - 1], ".") || is_punct(T[i - 1], "->")))
      cs.receiver = true;
    if (i > 1 && is_punct(T[i - 1], "::")) {
      // Collect the textual qualifier chain: a::b::name.
      std::size_t q = i - 1;
      std::vector<std::string> parts;
      while (q >= 1 && is_punct(T[q], "::")) {
        if (q >= 1 && is_ident(T[q - 1])) {
          parts.push_back(T[q - 1].text);
          if (q >= 2)
            q -= 2;
          else
            break;
        } else {
          parts.push_back("");  // global-scope ::name
          break;
        }
      }
      std::string qual;
      for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
        if (!qual.empty()) qual += "::";
        qual += *it;
      }
      cs.qual = qual.empty() ? "::" : qual;
    }
    cs.argc = static_cast<int>(split_args(f, i + 1).size());
    out.push_back(std::move(cs));
  }
  return out;
}

bool declared_in(const SourceFile& f, const std::string& name,
                 std::size_t begin, std::size_t end) {
  const auto& T = f.toks;
  for (std::size_t i = begin + 1; i + 1 < end && i + 1 < T.size(); ++i) {
    if (!is_ident(T[i]) || T[i].text != name) continue;
    const Token& prev = T[i - 1];
    const Token& next = T[i + 1];
    const bool prev_ok =
        (is_ident(prev) && !is_control_keyword(prev.text) &&
         prev.text != "return") ||
        is_punct(prev, ">") || is_punct(prev, "*") || is_punct(prev, "&") ||
        is_punct(prev, "&&");
    if (!prev_ok) continue;
    if (is_punct(prev, "&") && i >= 2 &&
        (is_punct(T[i - 2], ".") || is_punct(T[i - 2], "->")))
      continue;  // address-of a member, not a declaration
    const bool next_ok = is_punct(next, "=") || is_punct(next, "{") ||
                         is_punct(next, "(") || is_punct(next, ";") ||
                         is_punct(next, ":");
    if (next_ok) return true;
  }
  return false;
}

}  // namespace txsafety
