#!/bin/sh
# Local CI: the build/test matrix a change must survive before it ships.
#
#   tools/ci.sh            # full matrix: default, tmsan-armed, tsan, asan
#   tools/ci.sh quick      # default build + tests + lint only
#
# Run from the repository root (the presets use ${sourceDir}-relative
# binary dirs). Every stage prints a PASS/FAIL line; the script stops at
# the first failure (set -e), so the last line names the broken stage.
set -eu

cd "$(dirname "$0")/.."

JOBS="${ADTM_CI_JOBS:-$(nproc 2>/dev/null || echo 2)}"
MODE="${1:-full}"

stage() {
  printf '\n=== ci: %s ===\n' "$1"
}

# --- default build: the tier-1 gate ----------------------------------------
stage "default build"
cmake --preset default >/dev/null
cmake --build --preset default -j "$JOBS"

stage "default tests (tier-1)"
ctest --preset default -j "$JOBS"

# --- static checks ----------------------------------------------------------
stage "lint (txsafety + clang-tidy if installed)"
ctest --preset lint

# Repo-wide enforce: every txsafety check over src/tests/bench/examples/
# tools in one pass (the per-check ctest entries above split the same run
# for attribution; this is the single gate a change must survive).
stage "txsafety repo-wide enforce"
build/tools/txsafety all --quiet

# --- tmsan: the suite again with every runtime checker armed ----------------
stage "tmsan-armed sanitize suite (ADTM_TMSAN=1 ADTM_TMSAN_OPACITY=1)"
ctest --preset tmsan -j "$JOBS"

# --- adaptive switching: the controller + mid-load switch stress -------------
# Serial: the suite measures decision windows against wall-clock, and a
# rival test stealing the core starves the storm it is trying to observe.
stage "adaptive backend switching (tmsan-armed)"
ctest --preset adaptive

# --- crash torture: fork/kill/recover over every registered crash point -----
# The children run tmsan-armed with sampled stack capture (the preset sets
# ADTM_TMSAN_STACK_SAMPLE), so a clean run also vouches for the deferral
# contract under torture. ADTM_CRASHMAT_FULL=1 in the environment upgrades
# crashmat to the full point x algorithm x flavor enumeration.
stage "crash-recovery torture (crashmat + crashsim suites)"
ctest --preset crash -j "$JOBS"

# Soak: the quick matrix repeated with a seed sweep (different torn-write
# prefixes and interleavings each round), failing on the first oracle
# violation. Kept out of ctest so tier-1 wall time is unchanged;
# ADTM_CI_SOAK picks the iteration count.
stage "crash-recovery soak (crashmat --soak)"
ADTM_TMSAN=1 ADTM_TMSAN_STACK_SAMPLE=64 \
  build/tools/crashmat --soak "${ADTM_CI_SOAK:-2}" --threads 2 --ops 32

# --- OLTP workload smoke + perf regression gate ------------------------------
# Report-only by default: shared CI machines are too noisy for an enforcing
# throughput band, so the gate prints its verdict without failing the run.
# Override with ADTM_PERF_GATE=enforce on a quiet dedicated box (the
# perf_gate ctest entry enforces when run by hand; see DESIGN.md). Serial:
# the gate and the smoke matrix both measure.
stage "oltp workload smoke + perf gate (ADTM_PERF_GATE=${ADTM_PERF_GATE:-report})"
ADTM_PERF_GATE="${ADTM_PERF_GATE:-report}" ctest --preset oltp

if [ "$MODE" = "quick" ]; then
  printf '\nci: quick matrix PASS\n'
  exit 0
fi

# --- compiler sanitizers ----------------------------------------------------
stage "tsan build (-fsanitize=thread, -Werror=deprecated-declarations)"
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "$JOBS"

stage "tsan: liveness + fault suites"
ctest --preset tsan-concurrency -j "$JOBS"

stage "tsan: tmsan suite under annotated TSan"
ctest --preset tsan-sanitize -j "$JOBS"

stage "tsan: overload-control stress suite (health)"
ctest --preset overload -j "$JOBS"

stage "asan build (-fsanitize=address, -Werror=deprecated-declarations)"
cmake --preset asan >/dev/null
cmake --build --preset asan -j "$JOBS"

stage "asan: stats + obs suites"
ctest --preset asan-stats
ctest --preset asan-obs

printf '\nci: full matrix PASS\n'
