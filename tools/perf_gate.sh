#!/usr/bin/env bash
# perf_gate.sh — regression gate over the committed perf trajectory.
#
# Compares a fresh quick run of the perf-tracked benches against the
# committed snapshots in the repo root:
#
#   BENCH_oltp.json      oltp_ycsb + oltp_warehouse  (throughput ratio)
#   BENCH_health.json    micro_health                (per-op time ratio)
#   BENCH_crashsim.json  micro_crashsim              (p50 time ratio)
#
# Throughput entries (name ending /tput) fail when the fresh run achieves
# less than (1 - ADTM_PERF_BAND) of the committed ops/ns — the default
# band of 0.45 tolerates scheduler noise but a planted 2x slowdown (a 50%
# throughput drop; try ADTM_OLTP_SPIN_NS=20000) lands outside it. Time
# entries fail when fresh exceeds ADTM_PERF_BAND_TIME x committed (default
# 4.0 — recovery and shed-path timings are noisy at micro scale). Only
# names present in BOTH the committed snapshot and the fresh quick run are
# compared; the committed file may hold more (full-matrix) entries. When a
# committed file repeats a key, the last occurrence wins.
#
# A failing comparison re-measures once before judging — one bad
# scheduling quantum should not fail a commit.
#
# Modes (ADTM_PERF_GATE): enforce (default) fails the gate on regression;
# report prints the comparison but always exits 0 (what tools/ci.sh uses —
# CI machines are not the machines the snapshots were taken on).
# Missing snapshots or bench binaries exit 77 (ctest SKIP).
#
# Usage:
#   tools/perf_gate.sh [build-dir]       # run the gate (default ./build)
#   tools/perf_gate.sh --update [dir]    # refresh BENCH_oltp.json with the
#                                        # full committed matrix, then exit
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
MODE="${ADTM_PERF_GATE:-enforce}"
BAND="${ADTM_PERF_BAND:-0.45}"
BAND_TIME="${ADTM_PERF_BAND_TIME:-4.0}"

UPDATE=0
if [ "${1:-}" = "--update" ]; then
  UPDATE=1
  shift
fi
BUILD="${1:-$ROOT/build}"
# measure() changes directory; the build path must survive that.
case "$BUILD" in
  /*) ;;
  *) BUILD="$(cd "$BUILD" 2>/dev/null && pwd)" || {
       echo "perf_gate: build dir not found — SKIP"; exit 77; } ;;
esac

YCSB="$BUILD/bench/oltp_ycsb"
WH="$BUILD/bench/oltp_warehouse"
HEALTH="$BUILD/bench/micro_health"
CRASHSIM="$BUILD/bench/micro_crashsim"

for bin in "$YCSB" "$WH" "$HEALTH" "$CRASHSIM"; do
  if [ ! -x "$bin" ]; then
    echo "perf_gate: missing bench binary $bin (build first) — SKIP"
    exit 77
  fi
done

# Full committed matrix: the trajectory the repo publishes. Refreshing is
# deliberate (same machine, quiet load): tools/perf_gate.sh --update.
if [ "$UPDATE" = 1 ]; then
  echo "perf_gate: regenerating $ROOT/BENCH_oltp.json (full matrix)..."
  rm -f "$ROOT/BENCH_oltp.json"
  ADTM_BENCH_OUT="$ROOT/BENCH_oltp.json" ADTM_OLTP_CONTAINER=both \
    "$YCSB" || exit 1
  ADTM_BENCH_OUT="$ROOT/BENCH_oltp.json" "$WH" || exit 1
  echo "perf_gate: snapshot refreshed"
  exit 0
fi

for snap in BENCH_oltp.json BENCH_health.json BENCH_crashsim.json; do
  if [ ! -f "$ROOT/$snap" ]; then
    echo "perf_gate: no committed $snap — SKIP"
    exit 77
  fi
done

TMP="$(mktemp -d "${TMPDIR:-/tmp}/adtm-perf-gate.XXXXXX")"
trap 'rm -rf "$TMP"' EXIT

# Emit "name|label|real_ns|iterations" per entry line of an adtm-bench/v1
# file (BenchReport writes one entry per line, so line-wise parsing is
# exact for these files).
parse() {
  awk -F'"' '/"name":/ {
    real = $11; iters = $13
    gsub(/[^0-9.eE+-]/, "", real)
    gsub(/[^0-9]/, "", iters)
    print $4 "|" $8 "|" real "|" iters
  }' "$1"
}

# One quick measurement pass into $TMP. Short but same key space as the
# committed matrix so per-op costs are comparable.
measure() {
  rm -f "$TMP/oltp.json" "$TMP/health.json" "$TMP/crashsim.json"
  ADTM_BENCH_OUT="$TMP/oltp.json" ADTM_OLTP_THREADS="${ADTM_OLTP_THREADS:-2}" \
    ADTM_OLTP_DURATION_MS="${ADTM_OLTP_DURATION_MS:-120}" \
    ADTM_OLTP_CONTAINER=both "$YCSB" > /dev/null || return 1
  ADTM_BENCH_OUT="$TMP/oltp.json" ADTM_OLTP_THREADS="${ADTM_OLTP_THREADS:-2}" \
    ADTM_OLTP_DURATION_MS="${ADTM_OLTP_DURATION_MS:-120}" \
    "$WH" > /dev/null || return 1
  (cd "$TMP" && ADTM_BENCH_OUT="$TMP/health.json" "$HEALTH" > /dev/null) \
    || return 1
  (cd "$TMP" && ADTM_BENCH_OUT="$TMP/crashsim.json" "$CRASHSIM" > /dev/null) \
    || return 1
  return 0
}

# compare <committed> <fresh> <kind>
#   kind=tput : name|label keys ending in /tput, fresh ops/ns must be
#               >= (1-BAND) x committed
#   kind=time : per-op fresh real_ns must be <= BAND_TIME x committed;
#               crashsim keys include iterations (the record count) and
#               only p50 labels are gated (p99 of 15 runs is pure noise)
compare() {
  local committed="$1" fresh="$2" kind="$3"
  { parse "$committed" | sed 's/^/C|/'; parse "$fresh" | sed 's/^/F|/'; } |
  awk -F'|' -v kind="$kind" -v band="$BAND" -v band_time="$BAND_TIME" '
    function key(name, label, iters) {
      return kind == "crashsim" ? name "|" label "|" iters : name "|" label
    }
    {
      side = $1; name = $2; label = $3; real = $4; iters = $5
      if (kind == "tput" && name !~ /\/tput$/) next
      if (kind == "crashsim" && label != "p50") next
      k = key(name, label, iters)
      if (side == "C") { creal[k] = real; citer[k] = iters }  # last wins
      else            { freal[k] = real; fiter[k] = iters }
    }
    END {
      bad = 0; n = 0
      for (k in freal) {
        if (!(k in creal)) continue
        n++
        if (kind == "tput") {
          ctput = citer[k] / creal[k]; ftput = fiter[k] / freal[k]
          ratio = ftput / ctput
          status = ratio >= 1 - band ? "ok  " : "FAIL"
          if (status == "FAIL") bad++
          printf("  %s %-28s committed %10.0f ops/s  fresh %10.0f ops/s  (x%.2f)\n",
                 status, k, ctput * 1e9, ftput * 1e9, ratio)
        } else {
          cns = creal[k]; fns = freal[k]
          ratio = cns > 0 ? fns / cns : 1
          status = ratio <= band_time ? "ok  " : "FAIL"
          if (status == "FAIL") bad++
          printf("  %s %-34s committed %12.0f ns  fresh %12.0f ns  (x%.2f)\n",
                 status, k, cns, fns, ratio)
        }
      }
      if (n == 0) { print "  (no comparable entries)"; exit 2 }
      exit bad > 0 ? 1 : 0
    }'
}

run_compare() {
  local rc=0
  echo "perf_gate: throughput (band ${BAND}) vs BENCH_oltp.json"
  compare "$ROOT/BENCH_oltp.json" "$TMP/oltp.json" tput || rc=1
  echo "perf_gate: per-op time (band x${BAND_TIME}) vs BENCH_health.json"
  compare "$ROOT/BENCH_health.json" "$TMP/health.json" health || rc=1
  echo "perf_gate: recovery p50 (band x${BAND_TIME}) vs BENCH_crashsim.json"
  compare "$ROOT/BENCH_crashsim.json" "$TMP/crashsim.json" crashsim || rc=1
  return $rc
}

echo "perf_gate: quick measurement pass (mode: $MODE)"
measure || { echo "perf_gate: bench run failed"; exit 1; }
if ! run_compare; then
  echo "perf_gate: regression detected — re-measuring once to rule out noise"
  measure || { echo "perf_gate: bench run failed"; exit 1; }
  if ! run_compare; then
    if [ "$MODE" = "report" ]; then
      echo "perf_gate: REGRESSION (report-only mode; not failing)"
      exit 0
    fi
    echo "perf_gate: REGRESSION — fresh run outside the noise band."
    echo "perf_gate: if intentional, refresh with tools/perf_gate.sh --update"
    exit 1
  fi
fi
echo "perf_gate: OK"
exit 0
