// crashmat: fork-based crash-recovery torture for the atomic-deferral
// durability contract.
//
//   crashmat --list                  enumerate registered crash points
//   crashmat --quick                 bounded CI matrix (default)
//   crashmat --full                  every point x algorithm x flavor
//   crashmat --point wal.commit.write [--algo NOrec] [--torn] [--kill]
//   crashmat --soak N                quick matrix N times with a seed
//                                    sweep, stopping at the first oracle
//                                    violation (long-running torture)
//   crashmat --demo-dirsync-bug      re-introduce the lost-truncation bug
//                                    and show the verifier catching it
//
// Environment: ADTM_CRASHMAT_FULL=1 upgrades any matrix run to --full;
// ADTM_CRASHMAT_KEEP=1 keeps passing case directories for inspection.
// (Failing directories are always kept — they are the crime scene.)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "crashsim/harness.hpp"
#include "faultsim/crashpoint.hpp"
#include "stm/backend.hpp"

namespace {

using adtm::crashsim::CaseResult;
using adtm::crashsim::TortureCase;
using adtm::crashsim::WorkloadOptions;

bool parse_algo(const std::string& name, std::string& out) {
  // Accept registry ids ("2pl") and display names ("2PL") alike.
  if (const adtm::stm::Backend* b = adtm::stm::find_backend(name)) {
    out = b->name;
    return true;
  }
  return false;
}

int list_points() {
  std::printf("%-26s %-8s %s\n", "point", "subsystem", "kind");
  for (const auto& desc : adtm::faultsim::crash_points()) {
    std::printf("%-26s %-8s %s\n", desc.name.c_str(),
                desc.subsystem.c_str(),
                desc.write_path ? "write-path (torn-capable)" : "control");
  }
  return 0;
}

std::string case_dir(const std::string& base, std::size_t index) {
  return base + "/case" + std::to_string(index);
}

void print_result(const CaseResult& r) {
  std::printf("  %-44s %s\n", r.tc.name().c_str(),
              r.passed ? "ok" : "FAIL");
  if (!r.passed) {
    for (const auto& pr : r.phases) {
      std::printf("    phase %d: %s (wait status %d)\n", pr.phase,
                  adtm::crashsim::outcome_name(pr.outcome), pr.wait_status);
    }
    for (const auto& v : r.violations) {
      std::printf("    violation: %s\n", v.c_str());
    }
  }
}

// Soak mode: the quick matrix (or full, under ADTM_CRASHMAT_FULL) over
// and over with a distinct seed per iteration — distinct torn-write
// prefixes, distinct workload interleavings — failing fast on the first
// oracle violation so the wreckage that triggered it is the one kept.
int run_soak(std::uint64_t iterations, std::uint64_t seed, bool full,
             bool keep, const std::string& base, const WorkloadOptions& opts) {
  std::size_t total = 0;
  for (std::uint64_t it = 0; it < iterations; ++it) {
    // Large odd stride: consecutive iterations share no related seeds.
    const std::uint64_t sweep_seed = seed + it * 10007;
    const std::vector<TortureCase> cases =
        full ? adtm::crashsim::full_matrix(sweep_seed)
             : adtm::crashsim::quick_matrix(sweep_seed);
    std::printf("crashmat soak %llu/%llu: %zu case(s), seed %llu\n",
                static_cast<unsigned long long>(it + 1),
                static_cast<unsigned long long>(iterations), cases.size(),
                static_cast<unsigned long long>(sweep_seed));
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const std::string dir = case_dir(base, total + i);
      const CaseResult r = run_case(cases[i], dir, opts);
      if (!r.passed) {
        print_result(r);
        std::printf("    wreckage kept in %s\n", dir.c_str());
        std::printf("crashmat soak: FAILED at iteration %llu, case %zu\n",
                    static_cast<unsigned long long>(it + 1), i);
        return 1;
      }
      if (!keep) {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
      }
    }
    total += cases.size();
  }
  if (!keep) {
    std::error_code ec;
    std::filesystem::remove_all(base, ec);
  }
  std::printf("crashmat soak: %zu case(s) over %llu iteration(s), all ok\n",
              total, static_cast<unsigned long long>(iterations));
  return 0;
}

int run_demo(const std::string& base, const WorkloadOptions& opts) {
  std::printf("crashmat dirsync regression demo\n");
  std::printf("  scenario: crash leaves a torn WAL tail; recovery truncates "
              "it; a second\n  crash strikes before the next fsync. Without "
              "the post-truncate durability\n  barrier the truncation is "
              "lost and the garbage tail resurfaces.\n\n");

  TortureCase buggy;
  buggy.point = "wal.commit.write";
  buggy.demo_dirsync_bug = true;
  CaseResult broken = run_case(buggy, case_dir(base, 0), opts);
  const bool caught = !broken.violations.empty();
  std::printf("  pre-fix behavior (barrier disabled): %s\n",
              caught ? "verifier CAUGHT the lost truncation:"
                     : "verifier missed the bug (demo FAILED)");
  for (const auto& v : broken.violations) {
    std::printf("    violation: %s\n", v.c_str());
  }

  TortureCase fixed = buggy;
  fixed.demo_dirsync_bug = false;
  fixed.skip = 2;
  CaseResult ok = run_case(fixed, case_dir(base, 1), opts);
  std::printf("  fixed behavior (barrier enabled): %s\n",
              ok.passed ? "clean recovery, no violations" : "FAIL");
  if (!ok.passed) print_result(ok);

  return (caught && ok.passed) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool list = false;
  bool full = false;
  bool demo = false;
  bool keep = std::getenv("ADTM_CRASHMAT_KEEP") != nullptr;
  std::string point;
  std::string base;
  TortureCase single;
  WorkloadOptions opts;
  std::uint64_t seed = 1;
  std::uint64_t soak = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "crashmat: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--list") {
      list = true;
    } else if (arg == "--quick") {
      full = false;
    } else if (arg == "--full") {
      full = true;
    } else if (arg == "--demo-dirsync-bug") {
      demo = true;
    } else if (arg == "--point") {
      point = next();
    } else if (arg == "--algo") {
      if (!parse_algo(next(), single.algo)) {
        std::fprintf(stderr, "crashmat: unknown algorithm\n");
        return 2;
      }
    } else if (arg == "--torn") {
      single.persist_bytes = adtm::faultsim::CrashArm::kPersistRandom;
    } else if (arg == "--kill") {
      single.action = adtm::faultsim::CrashAction::Kill;
    } else if (arg == "--keep") {
      keep = true;
    } else if (arg == "--dir") {
      base = next();
    } else if (arg == "--seed") {
      seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--soak") {
      soak = std::strtoull(next().c_str(), nullptr, 10);
      if (soak == 0) {
        std::fprintf(stderr, "crashmat: --soak needs a count >= 1\n");
        return 2;
      }
    } else if (arg == "--threads") {
      opts.threads = static_cast<unsigned>(
          std::strtoul(next().c_str(), nullptr, 10));
    } else if (arg == "--ops") {
      opts.ops_per_thread = std::strtoull(next().c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: crashmat [--list] [--quick|--full] [--point NAME "
                   "[--algo A] [--torn] [--kill]]\n"
                   "                [--soak N] [--demo-dirsync-bug] [--dir D] "
                   "[--seed N] [--threads N] [--ops N] [--keep]\n");
      return 2;
    }
  }

  if (list) return list_points();

  const char* full_env = std::getenv("ADTM_CRASHMAT_FULL");
  if (full_env != nullptr && std::string(full_env) == "1") full = true;

  if (base.empty()) {
    char tmpl[] = "/tmp/crashmat.XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      std::perror("crashmat: mkdtemp");
      return 2;
    }
    base = tmpl;
  } else {
    std::error_code ec;
    std::filesystem::create_directories(base, ec);
  }

  if (demo) return run_demo(base, opts);
  if (soak > 0) return run_soak(soak, seed, full, keep, base, opts);

  std::vector<TortureCase> cases;
  if (!point.empty()) {
    if (adtm::faultsim::find_crash_point(point) ==
        adtm::faultsim::kNoCrashPoint) {
      std::fprintf(stderr, "crashmat: unknown crash point '%s' (--list)\n",
                   point.c_str());
      return 2;
    }
    single.point = point;
    single.seed = seed;
    cases.push_back(single);
  } else {
    cases = full ? adtm::crashsim::full_matrix(seed)
                 : adtm::crashsim::quick_matrix(seed);
  }

  std::printf("crashmat: %zu case(s), %s matrix, base %s\n", cases.size(),
              point.empty() ? (full ? "full" : "quick") : "single",
              base.c_str());
  std::size_t failures = 0;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const std::string dir = case_dir(base, i);
    const CaseResult r = run_case(cases[i], dir, opts);
    print_result(r);
    if (r.passed) {
      if (!keep) {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
      }
    } else {
      ++failures;
      std::printf("    wreckage kept in %s\n", dir.c_str());
    }
  }
  if (failures == 0 && !keep) {
    std::error_code ec;
    std::filesystem::remove_all(base, ec);
  }
  std::printf("crashmat: %zu/%zu cases passed\n", cases.size() - failures,
              cases.size());
  return failures == 0 ? 0 : 1;
}
