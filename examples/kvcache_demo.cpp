// Memcached-style cache demo (paper §5.1): many client threads hammer a
// TxCache while eviction diagnostics are logged via atomic deferral —
// robust logging without serializing a single transaction.
//
//   ./kvcache_demo [threads] [ops-per-thread]
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "adtm.hpp"

using namespace adtm;  // NOLINT: example brevity

int main(int argc, char** argv) {
  const unsigned threads = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  const unsigned ops = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2000;

  stm::init({.backend = "tl2"});

  io::TempDir dir("kvcache-demo");
  txlog::TxLogger evict_log(dir.file("evictions.log"));
  kvcache::TxCache cache(/*capacity=*/256, /*buckets=*/1024, &evict_log);

  // Seed a counter the clients bump atomically.
  cache.set("stats:requests", "0");

  Timer timer;
  std::vector<std::thread> clients;
  for (unsigned t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      Xoshiro256 rng{t + 101};
      for (unsigned i = 0; i < ops; ++i) {
        const std::string key = "user:" + std::to_string(rng.next_below(512));
        switch (rng.next_below(10)) {
          case 0:
            cache.del(key);
            break;
          case 1:
          case 2:
          case 3:
            cache.set(key, "profile-of-" + key);
            break;
          default:
            (void)cache.get(key);
            break;
        }
        cache.incr("stats:requests", 1);
      }
    });
  }
  for (auto& c : clients) c.join();
  const double secs = timer.elapsed_s();

  const kvcache::CacheStats s = cache.stats_snapshot();
  const auto requests = cache.get("stats:requests");
  const unsigned long expected =
      static_cast<unsigned long>(threads) * ops;

  std::printf("kvcache_demo: %u threads x %u ops in %.3fs (%.0f op/s)\n",
              threads, ops, secs, 2.0 * expected / secs);
  std::printf("hits=%llu misses=%llu sets=%llu evictions=%llu items=%zu\n",
              static_cast<unsigned long long>(s.hits),
              static_cast<unsigned long long>(s.misses),
              static_cast<unsigned long long>(s.sets),
              static_cast<unsigned long long>(s.evictions), cache.size());
  std::printf("request counter (transactional incr): %s, expected %lu\n",
              requests.value_or("<missing>").c_str(), expected);
  std::printf("eviction log records: %llu (deferred, never serialized)\n",
              static_cast<unsigned long long>(evict_log.records_written()));

  const bool ok = requests == std::to_string(expected) &&
                  evict_log.records_written() == s.evictions &&
                  cache.size() <= 256;
  std::printf("consistency: %s\n", ok ? "ok" : "BROKEN");
  return ok ? 0 : 1;
}
