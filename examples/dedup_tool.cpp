// dedup_tool: a command-line front end for the dedup pipeline — the
// PARSEC dedup workload as a usable utility.
//
//   ./dedup_tool compress <in> <out> [--mode pthread|tm|deferio|deferall]
//                [--algo <backend>] [--workers N]
//
// --algo takes any backend registered with the STM (stm::backend_registry
// ids or display names: tl2, eager, cgl, htmsim, norec, 2pl, ...).
//   ./dedup_tool restore <in> <out>
//   ./dedup_tool demo     (synthesizes input, round-trips all modes)
#include <cstdio>
#include <cstring>
#include <string>

#include "adtm.hpp"

using namespace adtm;  // NOLINT: example brevity

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  dedup_tool compress <in> <out> [--mode "
               "pthread|tm|deferio|deferall] [--algo BACKEND] "
               "[--workers N]\n"
               "  dedup_tool restore <in> <out>\n"
               "  dedup_tool verify <in>\n"
               "  dedup_tool demo\n");
  return 2;
}

bool parse_mode(const std::string& s, dedup::SyncMode* out) {
  if (s == "pthread") *out = dedup::SyncMode::Pthread;
  else if (s == "tm") *out = dedup::SyncMode::TmIrrevoc;
  else if (s == "deferio") *out = dedup::SyncMode::TmDeferIO;
  else if (s == "deferall") *out = dedup::SyncMode::TmDeferAll;
  else return false;
  return true;
}

bool parse_algo(const std::string& s, std::string* out) {
  // Any registered backend by id or display name ("htm" kept as a
  // convenience alias for the simulated-HTM family), or "auto" for the
  // adaptive controller — which is a Config selector, not a registered
  // backend, so it bypasses the lookup.
  if (s == "auto") {
    *out = s;
    return true;
  }
  const stm::Backend* b = stm::find_backend(s == "htm" ? "htmsim" : s);
  if (b == nullptr) return false;
  *out = b->id;
  return true;
}

void report(const dedup::PipelineStats& stats) {
  std::printf(
      "chunks=%llu unique=%llu dup=%llu in=%llu out=%llu ratio=%.2f "
      "time=%.3fs\n",
      static_cast<unsigned long long>(stats.chunks),
      static_cast<unsigned long long>(stats.unique_chunks),
      static_cast<unsigned long long>(stats.dup_chunks),
      static_cast<unsigned long long>(stats.bytes_in),
      static_cast<unsigned long long>(stats.bytes_out),
      stats.bytes_out > 0
          ? static_cast<double>(stats.bytes_in) /
                static_cast<double>(stats.bytes_out)
          : 0.0,
      stats.seconds);
}

int cmd_compress(int argc, char** argv) {
  if (argc < 4) return usage();
  dedup::Options opts;
  opts.mode = dedup::SyncMode::TmDeferAll;
  std::string backend = "tl2";
  for (int i = 4; i + 1 < argc; i += 2) {
    const std::string flag = argv[i], value = argv[i + 1];
    if (flag == "--mode" && parse_mode(value, &opts.mode)) continue;
    if (flag == "--algo" && parse_algo(value, &backend)) continue;
    if (flag == "--workers") {
      opts.workers = static_cast<unsigned>(std::strtoul(value.c_str(),
                                                        nullptr, 10));
      continue;
    }
    return usage();
  }
  stm::Config cfg;
  cfg.backend = backend;
  stm::init(cfg);

  const std::string input = io::read_file(argv[2]);
  const dedup::PipelineStats stats =
      dedup::dedup_stream(input, argv[3], opts);
  // Under "auto" the active backend is whatever the controller picked.
  std::printf("mode=%s algo=%s ", sync_mode_name(opts.mode),
              stm::current_backend()->name);
  report(stats);
  return 0;
}

int cmd_restore(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string container = io::read_file(argv[2]);
  io::write_file(argv[3], dedup::restore_str(container));
  std::printf("restored %s -> %s\n", argv[2], argv[3]);
  return 0;
}

int cmd_verify(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string container = io::read_file(argv[2]);
  try {
    // restore() re-checks every record's SHA-1 against its payload, so a
    // successful pass verifies container integrity end to end.
    const std::string restored = dedup::restore_str(container);
    std::printf("%s: OK (%zu container bytes -> %zu original bytes)\n",
                argv[2], container.size(), restored.size());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: CORRUPT (%s)\n", argv[2], e.what());
    return 1;
  }
}

int cmd_demo() {
  const std::string input = dedup::make_synthetic_input(
      {.total_bytes = 1 << 20, .dup_fraction = 0.5, .seed = 7});
  io::TempDir dir("dedup-demo");
  bool all_ok = true;
  for (const dedup::SyncMode mode :
       {dedup::SyncMode::Pthread, dedup::SyncMode::TmIrrevoc,
        dedup::SyncMode::TmDeferIO, dedup::SyncMode::TmDeferAll}) {
    stm::init({.backend = "tl2"});
    dedup::Options opts;
    opts.mode = mode;
    opts.workers = 4;
    const std::string out = dir.file("demo.dd");
    const dedup::PipelineStats stats = dedup::dedup_stream(input, out, opts);
    const bool ok = dedup::restore_str(io::read_file(out)) == input;
    std::printf("%-12s round-trip %s  ", sync_mode_name(mode),
                ok ? "ok " : "BAD");
    report(stats);
    all_ok = all_ok && ok;
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "compress") return cmd_compress(argc, argv);
  if (cmd == "restore") return cmd_restore(argc, argv);
  if (cmd == "verify") return cmd_verify(argc, argv);
  if (cmd == "demo") return cmd_demo();
  return usage();
}
