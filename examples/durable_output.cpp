// Durable output with guaranteed cross-file ordering (paper §5.2,
// Listing 4).
//
//   ./durable_output
//
// A write-ahead pattern: the "data" file must not be updated until the
// "journal" entry is durable (fsync'd). The journal's durability flag
// lives in a Deferrable buffer and is set inside the deferred
// write+fsync, so the data writer can simply wait on it transactionally.
#include <cstdio>
#include <thread>

#include "adtm.hpp"

using namespace adtm;  // NOLINT: example brevity

int main() {
  stm::init({.backend = "tl2"});
  io::TempDir dir("durable-demo");

  durable::DurableFile journal(dir.file("journal"));
  durable::DurableFile data(dir.file("data"));
  durable::DurableBuffer journal_entry("BEGIN update #42\n");
  durable::DurableBuffer data_payload("record 42: the actual update\n");

  // T2: applies the data update, but only after the journal entry has
  // reached the disk. wait_durable blocks via transactional retry.
  std::thread applier([&] {
    stm::atomic([&](stm::Tx& tx) {
      durable::wait_durable(tx, journal_entry);
      durable::durable_write(tx, data, data_payload);
    });
    std::printf("applier: data write issued after journal was durable\n");
  });

  // Give the applier a head start so the ordering is actually exercised.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  // T1: journal entry, durably.
  stm::atomic([&](stm::Tx& tx) {
    durable::durable_write(tx, journal, journal_entry);
  });
  std::printf("journal entry written and fsync'd\n");

  applier.join();

  std::printf("journal: %s", io::read_file(dir.file("journal")).c_str());
  std::printf("data:    %s", io::read_file(dir.file("data")).c_str());

  const bool ok =
      io::read_file(dir.file("journal")) == journal_entry.raw_payload() &&
      io::read_file(dir.file("data")) == data_payload.raw_payload();
  std::printf("ordering invariant held: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
