// A small transactional job scheduler: everything composed.
//
//   ./job_scheduler [workers] [jobs]
//
// Producers enqueue jobs on a transactional queue; workers block with
// pop_wait (retry-based), record results in a transactional hash map, and
// defer the completion log write with atomic_defer — all of the library's
// pieces (containers, condition synchronization, deferral) in ~100 lines
// of straight-line transactional code.
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "adtm.hpp"

using namespace adtm;  // NOLINT: example brevity

namespace {

struct Job {
  long id;
  long input;
};

long slow_compute(long x) {
  // Stand-in for real work: an iterated mixer.
  std::uint64_t v = static_cast<std::uint64_t>(x) * 2654435761u + 1;
  for (int i = 0; i < 500; ++i) v = v * 6364136223846793005ULL + 1442695040888963407ULL;
  return static_cast<long>(v % 1000000);
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned workers = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3;
  const long jobs = argc > 2 ? std::strtol(argv[2], nullptr, 10) : 300;

  stm::init({.backend = "tl2"});

  io::TempDir dir("scheduler-demo");
  txlog::TxLogger log(dir.file("completions.log"));
  containers::TxQueue<Job> queue;
  containers::TxHashMap<long, long> results(256);
  stm::tvar<long> remaining{jobs};

  std::vector<std::thread> pool;
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        // Claim a job or learn that everything is done — atomically.
        struct Claim {
          bool done;
          Job job;
        };
        const Claim claim = stm::atomic([&](stm::Tx& tx) -> Claim {
          if (remaining.get(tx) == 0) return {true, {}};
          const auto job = queue.pop(tx);
          if (!job.has_value()) stm::retry(tx);  // wait for a producer
          return {false, *job};
        });
        if (claim.done) return;

        const long output = slow_compute(claim.job.input);

        // Publish the result, decrement the counter, and defer the log
        // write — one atomic unit as far as any observer can tell. The
        // log registration comes first: acquiring the logger's ordered
        // TxLock may retry when contended, and a retry is only legal
        // before the transaction's first tvar write.
        stm::atomic([&](stm::Tx& tx) {
          log.log(tx, "job " + std::to_string(claim.job.id) + " -> " +
                          std::to_string(output));
          results.put(tx, claim.job.id, output);
          remaining.set(tx, remaining.get(tx) - 1);
        });
      }
    });
  }

  // Produce jobs from the main thread.
  for (long id = 0; id < jobs; ++id) {
    stm::atomic([&](stm::Tx& tx) { queue.push(tx, Job{id, id * 17}); });
  }
  for (auto& t : pool) t.join();

  // Verify: every job has a result matching a recomputation.
  long correct = 0;
  stm::atomic([&](stm::Tx& tx) {
    correct = 0;
    for (long id = 0; id < jobs; ++id) {
      const auto r = results.get(tx, id);
      if (r.has_value() && *r == slow_compute(id * 17)) ++correct;
    }
  });
  std::printf("job_scheduler: %ld/%ld jobs correct, %llu log records\n",
              correct, jobs,
              static_cast<unsigned long long>(log.records_written()));
  return correct == jobs &&
                 log.records_written() == static_cast<std::uint64_t>(jobs)
             ? 0
             : 1;
}
