// Atomic Quake in miniature (paper §5.1 cites the Atomic Quake server as
// TM's flagship application study): a game world updated by transactional
// player actions, with periodic world snapshots broadcast via atomic
// deferral so the expensive serialization + "network send" never blocks
// gameplay transactions.
//
//   ./game_server [players] [actions-per-player]
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>
#include <vector>

#include "adtm.hpp"

using namespace adtm;  // NOLINT: example brevity

namespace {

constexpr int kWorldSize = 16;  // kWorldSize x kWorldSize regions

// The world: each region holds a monster-count; players hunt monsters in
// one region and may chase one into an adjacent region — a two-region
// transaction (the irregular critical section that motivates TM).
struct World : Deferrable {
  stm::tvar<long> monsters[kWorldSize][kWorldSize];
  stm::tvar<long> total_kills{0};

  void populate() {
    for (auto& row : monsters) {
      for (auto& cell : row) cell.store_direct(1000);
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  const unsigned players = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  const unsigned actions = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 30000;

  stm::init({.backend = "tl2"});

  World world;
  world.populate();
  io::TempDir dir("game-server");
  io::PosixFile broadcast = io::PosixFile::create(dir.file("snapshots.txt"));

  Timer timer;
  std::vector<std::thread> threads;

  // Player threads: hunt in random regions.
  for (unsigned p = 0; p < players; ++p) {
    threads.emplace_back([&, p] {
      Xoshiro256 rng{p + 1};
      for (unsigned a = 0; a < actions; ++a) {
        const int x = static_cast<int>(rng.next_below(kWorldSize));
        const int y = static_cast<int>(rng.next_below(kWorldSize));
        const int dx = static_cast<int>(rng.next_below(3)) - 1;
        const int dy = static_cast<int>(rng.next_below(3)) - 1;
        stm::atomic([&](stm::Tx& tx) {
          world.subscribe(tx);  // wait out an in-flight snapshot
          long here = world.monsters[x][y].get(tx);
          if (here > 0) {
            world.monsters[x][y].set(tx, here - 1);
            world.total_kills.set(tx, world.total_kills.get(tx) + 1);
          } else {
            // Chase into the neighbouring region.
            const int nx = (x + dx + kWorldSize) % kWorldSize;
            const int ny = (y + dy + kWorldSize) % kWorldSize;
            const long there = world.monsters[nx][ny].get(tx);
            if (there > 0) {
              world.monsters[nx][ny].set(tx, there - 1);
              world.total_kills.set(tx, world.total_kills.get(tx) + 1);
            }
          }
        });
      }
    });
  }

  // Snapshot thread: periodically serialize the whole world inside a
  // transaction (a consistent snapshot!) and defer the broadcast write.
  // Without deferral this large transaction + I/O would have to be
  // irrevocable, stalling every player on every snapshot.
  std::thread snapshotter([&] {
    for (int tick = 0; tick < 10; ++tick) {
      stm::atomic([&](stm::Tx& tx) {
        std::ostringstream snap;
        long remaining = 0;
        for (auto& row : world.monsters) {
          for (auto& cell : row) remaining += cell.get(tx);
        }
        snap << "tick " << tick << ": kills=" << world.total_kills.get(tx)
             << " remaining=" << remaining
             << " conserved=" << (world.total_kills.get(tx) + remaining)
             << "\n";
        atomic_defer(tx, [&broadcast, s = snap.str()] {
          broadcast.write_fully(s.data(), s.size());
        }, world);
      });
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (auto& t : threads) t.join();
  snapshotter.join();

  long remaining = 0;
  for (auto& row : world.monsters) {
    for (auto& cell : row) remaining += cell.load_direct();
  }
  const long kills = world.total_kills.load_direct();
  const long expected_total = 1000L * kWorldSize * kWorldSize;

  std::printf("game_server: %u players x %u actions in %.3fs\n", players,
              actions, timer.elapsed_s());
  std::printf("kills=%ld remaining=%ld conserved=%ld (expected %ld)\n",
              kills, remaining, kills + remaining, expected_total);
  std::printf("snapshot broadcast:\n%s",
              io::read_file(dir.file("snapshots.txt")).c_str());
  // Every snapshot line must show perfect conservation: the snapshot was
  // a consistent transactional view despite concurrent players.
  const std::string snaps = io::read_file(dir.file("snapshots.txt"));
  const bool consistent =
      snaps.find("conserved=" + std::to_string(expected_total)) !=
          std::string::npos &&
      snaps.find("conserved=") != std::string::npos;
  std::istringstream check(snaps);
  std::string line;
  bool all_ok = kills + remaining == expected_total;
  while (std::getline(check, line)) {
    all_ok = all_ok && line.find("conserved=" +
                                 std::to_string(expected_total)) !=
                           std::string::npos;
  }
  std::printf("world conservation in every snapshot: %s\n",
              all_ok && consistent ? "ok" : "BROKEN");
  return all_ok ? 0 : 1;
}
