// Deferred transactional logging (paper §5.1): many threads log from
// inside transactions without serializing the program.
//
//   ./txlog_demo [threads] [ops]
//
// Each thread runs transactions over a shared table and logs a formatted
// record per transaction. The record is formatted *inside* the transaction
// (so it sees a consistent snapshot of mutable shared data) and the write
// syscall is deferred past commit — printf debugging without
// irrevocability.
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "adtm.hpp"

using namespace adtm;  // NOLINT: example brevity

int main(int argc, char** argv) {
  const unsigned threads = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  const unsigned ops = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 200;

  stm::init({.backend = "tl2"});

  io::TempDir dir("txlog-demo");
  txlog::TxLogger logger(dir.file("audit.log"));

  constexpr int kSlots = 8;
  stm::tvar<long> table[kSlots];

  Timer timer;
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (unsigned i = 0; i < ops; ++i) {
        stm::atomic([&](stm::Tx& tx) {
          const int slot = static_cast<int>((t + i) % kSlots);
          const long v = table[slot].get(tx) + 1;
          // The log line captures transactional state; the write happens
          // after commit, ordered on this descriptor, atomic with us.
          // Register it before the tvar write — a contended registration
          // retries, which is only legal while the write set is empty.
          logger.log(tx, "thread " + std::to_string(t) + " set slot " +
                             std::to_string(slot) + " to " +
                             std::to_string(v));
          table[slot].set(tx, v);
        });
      }
    });
  }
  for (auto& t : pool) t.join();

  long total = 0;
  for (const auto& slot : table) total += slot.load_direct();

  std::printf("txlog_demo: %u threads x %u ops in %.3fs\n", threads, ops,
              timer.elapsed_s());
  std::printf("table total = %ld (expected %u)\n", total, threads * ops);
  std::printf("log records written = %llu (expected %u) at %s\n",
              static_cast<unsigned long long>(logger.records_written()),
              threads * ops, dir.file("audit.log").c_str());
  return total == static_cast<long>(threads) * ops &&
                 logger.records_written() == std::uint64_t{threads} * ops
             ? 0
             : 1;
}
