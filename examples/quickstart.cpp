// Quickstart: transactions, transaction-friendly locks, atomic deferral,
// and tracing in ~120 lines.
//
//   ./quickstart
//
// Demonstrates the core API: stm::atomic / stm::tvar for transactions,
// Deferrable + atomic_defer for moving a slow operation out of a
// transaction while keeping it atomic, the subscribe convention that
// makes other transactions wait out an in-flight deferred operation, and
// the observability layer (Chrome trace + abort-cause summary).
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "adtm.hpp"

using namespace adtm;  // NOLINT: example brevity

// A deferrable object: an account whose audit record is written by a slow
// operation we do not want inside the transaction.
class Account : public Deferrable {
 public:
  long balance(stm::Tx& tx) const {
    subscribe(tx);  // wait out any in-flight deferred op on this account
    return balance_.get(tx);
  }
  void deposit(stm::Tx& tx, long amount) {
    subscribe(tx);
    balance_.set(tx, balance_.get(tx) + amount);
  }
  long balance_raw() const { return balance_.load_direct(); }

 private:
  stm::tvar<long> balance_{0};
};

int main() {
  // Pick a TM algorithm (TL2 software TM here; Eager, HTMSim, and the CGL
  // baseline are one enum away).
  stm::Config cfg;
  cfg.backend = "tl2";
  stm::init(cfg);

  Account checking, savings;

  // 1. A plain transaction: atomic transfer between two accounts.
  //    Subscribe both accounts up front: a contended subscribe waits by
  //    retrying, and a retry is only legal before the transaction's first
  //    write. Once subscribed, deposit's own subscribe is a reentrant
  //    no-op, so the ordering below is safe.
  stm::atomic([&](stm::Tx& tx) {
    checking.subscribe(tx);
    savings.subscribe(tx);
    checking.deposit(tx, 1000);
    savings.deposit(tx, 500);
  });
  std::printf("after deposits: checking=%ld savings=%ld\n",
              checking.balance_raw(), savings.balance_raw());

  // 2. Atomic deferral: move a slow audit write out of the transaction.
  //    The audit appears atomic with the transfer — a concurrent reader of
  //    `checking` waits (via subscribe) until the audit completes.
  stm::atomic([&](stm::Tx& tx) {
    // Same rule as above: take both accounts' locks before writing, so the
    // atomic_defer's acquire of `checking` below is reentrant and cannot
    // block after the write set is non-empty.
    checking.subscribe(tx);
    savings.subscribe(tx);
    checking.deposit(tx, -200);
    savings.deposit(tx, 200);
    atomic_defer(
        tx,
        [&checking] {
          // Runs after commit, holding checking's implicit lock. Simulate
          // a slow irrevocable operation (e.g. writing an audit log).
          // Captures are named, never a blanket [&]: the epilogue outlives
          // the registering scope (adtmlint's defer-capture check).
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
          std::printf("audit: moved 200 checking->savings (balance %ld)\n",
                      checking.balance_raw());
        },
        checking);
  });

  // 3. The concurrent view: this transaction subscribed, so it could only
  //    read the account after the deferred audit finished.
  const long seen =
      stm::atomic([&](stm::Tx& tx) { return checking.balance(tx); });
  std::printf("reader saw checking=%ld (after the audit, never between)\n",
              seen);

  // 4. Condition synchronization with retry: wait until a flag is set.
  stm::tvar<bool> flag{false};
  std::thread setter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stm::atomic([&](stm::Tx& tx) { flag.set(tx, true); });
  });
  stm::atomic([&](stm::Tx& tx) {
    if (!flag.get(tx)) stm::retry(tx);  // blocks until the setter commits
  });
  setter.join();
  std::printf("retry() woke after the flag was set\n");

  // 5. Observability: turn on tracing (equivalently: run with ADTM_TRACE=1,
  //    plus ADTM_TRACE_OUT=path for an automatic trace file at exit), do
  //    some contended work, and render what happened.
  {
    RuntimeConfig rc = runtime_config();
    rc.trace = true;
    configure(rc);

    // Contended increments produce real conflict aborts; a cancel()
    // records an Explicit abort — both land in the structured taxonomy.
    stm::tvar<long> counter{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
      workers.emplace_back([&] {
        for (int i = 0; i < 2000; ++i) {
          stm::atomic([&](stm::Tx& tx) { counter.set(tx, counter.get(tx) + 1); });
        }
      });
    }
    for (auto& w : workers) w.join();
    stm::atomic([&](stm::Tx& tx) {
      counter.get(tx);
      stm::cancel(tx);  // discards the attempt; records an Explicit abort
    });

    if (obs::write_chrome_trace("quickstart_trace.json")) {
      std::printf(
          "wrote quickstart_trace.json (load in Perfetto or "
          "chrome://tracing)\n");
    }
    std::printf("run summary:\n%s\n", obs::summary_json().c_str());
  }

  return 0;
}
