// File-descriptor pool with deferred open/close (paper §5.3, Listing 5).
//
//   ./fdpool_demo [threads] [appends-per-thread]
//
// Models MySQL InnoDB's tablespace pool: 8 logical files, at most 3 open
// descriptors. Appends reserve their offset in a transaction that
// subscribes to the pool and transfer data via async I/O; when a closed
// file is touched while the pool is full, victims are closed and the file
// opened — system calls deferred out of the transaction while concurrent
// pool users stall briefly on the pool's implicit lock instead of the
// whole program serializing.
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "adtm.hpp"

using namespace adtm;  // NOLINT: example brevity

int main(int argc, char** argv) {
  const unsigned threads = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  const unsigned appends = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 150;

  stm::init({.backend = "tl2"});
  stats().reset();

  io::TempDir dir("fdpool-demo");
  fdpool::AsyncIOEngine engine(2);
  fdpool::FilePool pool(dir.path(), /*max_open=*/3, engine);
  constexpr std::size_t kFiles = 8;
  for (std::size_t i = 0; i < kFiles; ++i) {
    pool.add_node("table" + std::to_string(i) + ".ibd");
  }

  Timer timer;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng{t + 7};
      for (unsigned i = 0; i < appends; ++i) {
        const std::size_t file = rng.next_below(kFiles);
        pool.append_async(file, "row(thread=" + std::to_string(t) +
                                    ",op=" + std::to_string(i) + ")\n");
      }
    });
  }
  for (auto& w : workers) w.join();
  pool.drain();

  std::printf("fdpool_demo: %u threads x %u appends in %.3fs\n", threads,
              appends, timer.elapsed_s());
  std::printf("open descriptors now: %zu (cap %zu)\n",
              pool.open_count_direct(), pool.max_open());

  bool ok = pool.open_count_direct() <= pool.max_open();
  std::uint64_t total_reserved = 0, total_on_disk = 0;
  for (std::size_t i = 0; i < kFiles; ++i) {
    const std::uint64_t reserved = pool.node_size_direct(i);
    const std::uint64_t on_disk = io::read_file(pool.node_path(i)).size();
    std::printf("  %-12s reserved=%8llu on_disk=%8llu %s\n",
                ("table" + std::to_string(i)).c_str(),
                static_cast<unsigned long long>(reserved),
                static_cast<unsigned long long>(on_disk),
                reserved == on_disk ? "ok" : "MISMATCH");
    ok = ok && reserved == on_disk;
    total_reserved += reserved;
    total_on_disk += on_disk;
  }
  std::printf("deferred ops executed: %llu, txlock subscriptions: %llu\n",
              static_cast<unsigned long long>(
                  stats().total(Counter::DeferredOps)),
              static_cast<unsigned long long>(
                  stats().total(Counter::TxLockSubscribes)));
  std::printf("all %llu reserved bytes on disk: %s\n",
              static_cast<unsigned long long>(total_reserved),
              ok && total_reserved == total_on_disk ? "yes" : "NO");
  return ok ? 0 : 1;
}
